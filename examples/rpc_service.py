#!/usr/bin/env python3
"""An RPC service with framework-level hints (paper §3.3's adoption story).

Builds a two-method "inventory" service on the bundled RPC framework.
The application code never touches a counter: the channel drives the
create/complete hints internally and ships them over the metadata
exchange, so the *server* can report the client-perceived latency and
throughput of its own callers — per §3.3, "the server needs not monitor
and share its own queue states".

Run:  python examples/rpc_service.py
"""

from __future__ import annotations

from repro.core.exchange import MetadataExchange
from repro.core.hints import RemoteHintEstimator
from repro.host.host import Host
from repro.net.topology import PointToPoint
from repro.rpc import RpcChannel, RpcMethod, RpcServer
from repro.sim.loop import Simulator
from repro.sim.process import Timeout
from repro.sim.rng import RngRegistry
from repro.tcp.connect import connect_pair
from repro.tcp.socket import TcpConfig
from repro.units import msecs, to_usecs, usecs

LOOKUP = RpcMethod(method_id=1, name="Lookup",
                   reply_bytes_fn=lambda n: 256, cost_ns=3_000)
RESERVE = RpcMethod(method_id=2, name="Reserve",
                    reply_bytes_fn=lambda n: 32, cost_ns=9_000)


def main() -> None:
    sim = Simulator()
    rng = RngRegistry(7)
    client_host = Host(sim, "client")
    server_host = Host(sim, "server")
    PointToPoint.connect(sim, client_host.nic, server_host.nic,
                         propagation_delay_ns=usecs(10))
    sock_a, sock_b = connect_pair(sim, client_host, server_host,
                                  TcpConfig(nagle=False))
    client_exchange = MetadataExchange(sim, sock_a, period_ns=msecs(5))
    server_exchange = MetadataExchange(sim, sock_b, period_ns=msecs(5))

    channel = RpcChannel(sim, client_host, sock_a, exchange=client_exchange,
                         name="inventory-client")
    server = RpcServer(sim, server_host, [sock_b], name="inventory")
    server.register(LOOKUP)
    server.register(RESERVE)
    server.start()

    latencies: dict[str, list[int]] = {"Lookup": [], "Reserve": []}

    def workload():
        stream = rng.stream("calls")
        while sim.now < msecs(200):
            method = LOOKUP if stream.random() < 0.8 else RESERVE
            start = sim.now
            yield channel.call(method.method_id, payload_bytes=512)
            latencies[method.name].append(sim.now - start)
            yield Timeout(stream.exponential_ns(100_000))  # ~10 kRPS

    sim.spawn(workload(), name="workload")
    sim.run(until=msecs(210))

    print("=== application view (what the client measured itself) ===")
    for name, samples in latencies.items():
        mean = sum(samples) / len(samples)
        print(f"  {name:8s}: {len(samples):5d} calls, "
              f"mean {to_usecs(mean):.1f} us")

    print("\n=== server view, from exchanged hints alone ===")
    estimator = RemoteHintEstimator(server_exchange)
    averages = estimator.sample()
    if averages is not None and averages.defined:
        all_samples = latencies["Lookup"] + latencies["Reserve"]
        overall = sum(all_samples) / len(all_samples)
        print(f"  end-to-end latency ~= {to_usecs(averages.latency_ns):.1f} us "
              f"(client measured {to_usecs(overall):.1f} us)")
        print(f"  call throughput   ~= {averages.throughput_per_sec:,.0f}/s")
    print(f"\n  exchange overhead: "
          f"{client_exchange.option_bytes_sent} option bytes from the client "
          f"({client_exchange.states_sent} states)")
    print("  The handlers and the workload never touched a counter — the "
          "framework did (the paper's gRPC/Thrift adoption argument).")


if __name__ == "__main__":
    main()
