#!/usr/bin/env python3
"""The Figure 4a experiment at example scale: a Redis-like server under
an open-loop load sweep, with Nagle batching off (Redis's default) and
on, comparing measured latency with the paper's end-to-end estimates.

Prints the latency-vs-load series, the cutoff where batching starts
winning, and the SLO-range headlines.

Run:  python examples/redis_nagle_sweep.py          (about a minute)
      python examples/redis_nagle_sweep.py --quick  (coarser, faster)
"""

from __future__ import annotations

import sys
from dataclasses import replace

from repro.analysis.cutoff import crossover_rate, range_extension
from repro.analysis.report import format_table
from repro.experiments.fig4a import SLO_NS, default_config
from repro.loadgen.sweep import measured_curve, sweep_rates
from repro.units import msecs, to_usecs


def main(quick: bool) -> None:
    rates = (
        [10_000.0, 35_000.0, 55_000.0]
        if quick
        else [5_000.0, 15_000.0, 25_000.0, 35_000.0, 45_000.0, 55_000.0,
              65_000.0, 75_000.0]
    )
    base = default_config(measure_ns=msecs(60 if quick else 100))

    print(f"sweeping {len(rates)} offered loads x 2 Nagle settings ...")
    off_points = sweep_rates(replace(base, nagle=False), rates)
    on_points = sweep_rates(replace(base, nagle=True), rates)

    rows = []
    for off, on in zip(off_points, on_points):
        def fmt(point):
            est = point.result.estimate
            est_us = to_usecs(est.latency_ns) if est and est.defined else float("nan")
            return to_usecs(point.result.latency.mean_ns), est_us

        meas_off, est_off = fmt(off)
        meas_on, est_on = fmt(on)
        rows.append((int(off.rate_per_sec), meas_off, est_off, meas_on, est_on))

    print(format_table(
        ["offered RPS", "measured off (us)", "estimated off",
         "measured on (us)", "estimated on"],
        rows,
        title="SET 16KiB: mean latency vs load (off = TCP_NODELAY, Redis default)",
    ))

    off_curve = measured_curve(off_points)
    on_curve = measured_curve(on_points)

    if len(rates) > 3:
        from repro.loadgen.sweep import estimated_curve
        from repro.analysis.plot import ascii_plot, curve_points

        print()
        print(ascii_plot(
            {
                "measured off": curve_points(off_curve),
                "measured on": curve_points(on_curve),
                "estimated off": curve_points(estimated_curve(off_points)),
                "estimated on": curve_points(estimated_curve(on_points)),
            },
            width=64, height=16, log_y=True,
            title="mean latency vs offered load (Figure 4a)",
            x_label="offered RPS", y_label="latency (us)",
        ))

    cutoff = crossover_rate(off_curve, on_curve)
    if cutoff:
        print(f"\ncutoff: batching starts winning around {cutoff:,.0f} RPS")
    try:
        base_max, batch_max, factor = range_extension(off_curve, on_curve, SLO_NS)
        print(f"sustainable under 500us SLO: off={base_max:,.0f} RPS, "
              f"on={batch_max:,.0f} RPS -> {factor:.2f}x extension "
              "(paper: 1.93x)")
    except Exception as exc:  # pragma: no cover - informational only
        print(f"(SLO analysis unavailable on this grid: {exc})")


if __name__ == "__main__":
    main(quick="--quick" in sys.argv)
