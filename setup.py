"""Legacy setup shim.

Exists so ``pip install -e . --no-build-isolation --no-use-pep517`` (or
``python setup.py develop``) works on environments without the ``wheel``
package, where PEP 660 editable installs cannot build.  All metadata
lives in pyproject.toml.
"""

from setuptools import setup

setup()
