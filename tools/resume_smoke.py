#!/usr/bin/env python3
"""Resume smoke test: SIGKILL a campaign mid-flight, resume, diff output.

The checkpoint subsystem's promise is that a campaign killed at an
arbitrary instant — not at a tidy boundary — resumes to output
byte-identical to a never-interrupted run.  Unit tests cover the store
and the supervisor in-process; this tool is the end-to-end version CI
runs against the real CLI:

1. run the campaign cleanly, capturing stdout (the reference);
2. start the same command with ``--resume DIR`` as a detached child,
   wait until its checkpoint directory holds at least one completed
   record, then SIGKILL the whole process group;
3. rerun the same command with the same ``--resume DIR`` to completion;
4. fail unless the resumed stdout is byte-identical to the reference
   (and report how many runs the resume actually skipped).

Usage::

    PYTHONPATH=src python tools/resume_smoke.py
    PYTHONPATH=src python tools/resume_smoke.py --seeds 1 2 --measure-ms 40
"""

from __future__ import annotations

import argparse
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time


def _campaign_cmd(args, resume: pathlib.Path | None) -> list[str]:
    cmd = [
        sys.executable, "-m", "repro", "fig2",
        "--seeds", *[str(s) for s in args.seeds],
        "--measure-ms", str(args.measure_ms),
        "--workers", str(args.workers),
    ]
    if resume is not None:
        cmd += ["--resume", str(resume)]
    return cmd


def _checkpointed_results(directory: pathlib.Path) -> int:
    """Completed-result lines across all shards (header lines excluded)."""
    count = 0
    for shard in directory.glob("shard-*.jsonl"):
        try:
            lines = shard.read_text().splitlines()
        except OSError:
            continue
        count += sum(1 for line in lines if '"status":"ok"' in line)
    return count


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seeds", type=int, nargs="+", default=[1, 2])
    parser.add_argument("--measure-ms", type=int, default=40)
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument(
        "--kill-after", type=int, default=1, metavar="N",
        help="SIGKILL the campaign once N results are checkpointed "
             "(default 1)",
    )
    parser.add_argument(
        "--poll-timeout", type=float, default=600.0,
        help="seconds to wait for the kill threshold / the runs",
    )
    args = parser.parse_args(argv)
    env = dict(os.environ)
    repo = pathlib.Path(__file__).resolve().parent.parent
    env["PYTHONPATH"] = str(repo / "src")

    print("[1/3] reference: uninterrupted campaign", flush=True)
    clean = subprocess.run(
        _campaign_cmd(args, resume=None), env=env,
        capture_output=True, text=True, timeout=args.poll_timeout,
    )
    if clean.returncode != 0:
        print(clean.stderr, file=sys.stderr)
        print("FAIL: reference campaign did not run", file=sys.stderr)
        return 1

    with tempfile.TemporaryDirectory(prefix="resume-smoke-") as tmp:
        ckpt = pathlib.Path(tmp) / "ckpt"

        print(f"[2/3] interrupt: SIGKILL after {args.kill_after} "
              "checkpointed run(s)", flush=True)
        victim = subprocess.Popen(
            _campaign_cmd(args, resume=ckpt), env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            start_new_session=True,  # so the kill takes the whole group
        )
        deadline = time.monotonic() + args.poll_timeout
        interrupted = False
        while time.monotonic() < deadline:
            if victim.poll() is not None:
                break  # finished before we could kill it — still a test
            if _checkpointed_results(ckpt) >= args.kill_after:
                os.killpg(victim.pid, signal.SIGKILL)
                victim.wait(timeout=30)
                interrupted = True
                break
            time.sleep(0.1)
        else:
            os.killpg(victim.pid, signal.SIGKILL)
            print("FAIL: campaign produced no checkpoint in time",
                  file=sys.stderr)
            return 1
        done_at_kill = _checkpointed_results(ckpt)
        print(f"      killed={'yes' if interrupted else 'no (finished first)'}"
              f" checkpointed={done_at_kill}", flush=True)

        print("[3/3] resume: same command, same directory", flush=True)
        resumed = subprocess.run(
            _campaign_cmd(args, resume=ckpt), env=env,
            capture_output=True, text=True, timeout=args.poll_timeout,
        )
        if resumed.returncode != 0:
            print(resumed.stderr, file=sys.stderr)
            print("FAIL: resumed campaign did not finish", file=sys.stderr)
            return 1
        skipped = [
            line for line in resumed.stderr.splitlines()
            if "resume: skipped" in line
        ]
        if skipped:
            print(f"      {skipped[-1].strip()}", flush=True)

    if resumed.stdout != clean.stdout:
        print("FAIL: resumed output differs from the uninterrupted run",
              file=sys.stderr)
        for name, text in (("clean", clean.stdout), ("resumed", resumed.stdout)):
            print(f"--- {name} ---\n{text}", file=sys.stderr)
        return 1
    print("OK: resumed campaign output is byte-identical to the "
          "uninterrupted run")
    return 0


if __name__ == "__main__":
    sys.exit(main())
