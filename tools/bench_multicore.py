"""Real multicore speedup measurement for the parallel runners.

The perf suite gates machine-independent serial ratios; wall-clock
parallel *wins* need real cores, which CI boxes may not have.  This
harness records what the machine can actually show into
``benchmarks/results/multicore.json``:

- the decomposed fan-in, serial vs 2 shards / 2 workers;
- an 8-rate x 2-seed ``replicated_sweep``, serial vs pooled;
- the shared-bottleneck windowed run, serial vs 2 shards / 2 workers;

each with its byte-identity check (a speedup that changes a byte is a
bug, not a win).  On a single-CPU box every comparison would measure
only pool overhead, so the harness records a skip marker instead of a
misleading number — CI uploads the file either way, so the trajectory
shows *why* a leg has no speedup data.

Run: ``PYTHONPATH=src python tools/bench_multicore.py``
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

SCHEMA = "repro-multicore-v1"
DEFAULT_OUT = (
    pathlib.Path(__file__).resolve().parent.parent
    / "benchmarks" / "results" / "multicore.json"
)


def _timed(run):
    start = time.perf_counter()
    result = run()
    return result, time.perf_counter() - start


def _best(run, reps: int):
    """Best-of-``reps`` wall-clock (first result kept for identity)."""
    result, best = _timed(run)
    for _ in range(reps - 1):
        _, elapsed = _timed(run)
        best = min(best, elapsed)
    return result, best


def measure_sharded_fanin(reps: int) -> dict:
    from repro.experiments.fanin import FaninConfig, run_fanin_sharded
    from repro.units import msecs

    config = FaninConfig(warmup_ns=msecs(20), measure_ns=msecs(80))
    serial, serial_s = _best(
        lambda: run_fanin_sharded(config, shards=1, workers=1), reps
    )
    sharded, sharded_s = _best(
        lambda: run_fanin_sharded(config, shards=2, workers=2), reps
    )
    return {
        "serial_seconds": round(serial_s, 3),
        "sharded_2x2_seconds": round(sharded_s, 3),
        "speedup": round(serial_s / sharded_s, 3),
        "byte_identical": serial.to_json() == sharded.to_json(),
    }


def measure_parallel_sweep(reps: int) -> dict:
    from repro.loadgen.lancet import BenchConfig
    from repro.loadgen.replications import replicated_sweep
    from repro.units import msecs

    base = BenchConfig(
        rate_per_sec=10_000.0, warmup_ns=msecs(2), measure_ns=msecs(8)
    )
    rates = [5_000.0, 10_000.0, 15_000.0, 20_000.0,
             25_000.0, 30_000.0, 35_000.0, 40_000.0]
    seeds = (1, 2)
    workers = min(4, os.cpu_count() or 1)
    serial, serial_s = _best(
        lambda: replicated_sweep(base, rates, seeds, workers=1), reps
    )
    pooled, pooled_s = _best(
        lambda: replicated_sweep(base, rates, seeds, workers=workers), reps
    )
    return {
        "workers": workers,
        "serial_seconds": round(serial_s, 3),
        "parallel_seconds": round(pooled_s, 3),
        "speedup": round(serial_s / pooled_s, 3),
        "identical": pooled == serial,
    }


def measure_bottleneck_sync(reps: int) -> dict:
    from repro.experiments.bottleneck import (
        BottleneckConfig,
        run_shared_bottleneck,
    )
    from repro.units import msecs

    # 80 windows: long enough for real contention, short enough that the
    # per-window full-history payloads (the price of pure, resumable
    # jobs) don't dominate the wall-clock being compared.
    config = BottleneckConfig(warmup_ns=msecs(10), measure_ns=msecs(30))
    serial, serial_s = _best(
        lambda: run_shared_bottleneck(config, shards=1, workers=1), reps
    )
    windowed, windowed_s = _best(
        lambda: run_shared_bottleneck(config, shards=2, workers=2), reps
    )
    return {
        "windows": serial.windows,
        "exchanged_events": serial.exchanged_events,
        "serial_seconds": round(serial_s, 3),
        "windowed_2x2_seconds": round(windowed_s, 3),
        "speedup": round(serial_s / windowed_s, 3),
        "byte_identical": serial.to_json() == windowed.to_json(),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="record real multicore speedups (or a skip marker)"
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=DEFAULT_OUT,
        help=f"output JSON path (default {DEFAULT_OUT})",
    )
    parser.add_argument(
        "--reps", type=int, default=2,
        help="wall-clock repetitions per shape (best-of; default 2)",
    )
    args = parser.parse_args(argv)

    cpu_count = os.cpu_count() or 1
    document = {"schema": SCHEMA, "cpu_count": cpu_count}
    if cpu_count < 2:
        document["skipped"] = "cpu_count<2"
        print(f"cpu_count={cpu_count}: a pool on one core measures only "
              "overhead; recording the skip instead of a misleading number")
    else:
        document["sharded_fanin"] = measure_sharded_fanin(args.reps)
        document["parallel_sweep"] = measure_parallel_sweep(args.reps)
        document["bottleneck_sync"] = measure_bottleneck_sync(args.reps)
        for name in ("sharded_fanin", "bottleneck_sync"):
            section = document[name]
            if not section["byte_identical"]:
                print(f"ERROR: {name} parallel run is not byte-identical "
                      "to serial", file=sys.stderr)
                return 1
            print(f"{name}: {section['speedup']}x "
                  f"({section['serial_seconds']}s serial)")
        sweep = document["parallel_sweep"]
        if not sweep["identical"]:
            print("ERROR: pooled sweep diverged from serial",
                  file=sys.stderr)
            return 1
        print(f"parallel_sweep: {sweep['speedup']}x "
              f"with {sweep['workers']} workers")

    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
