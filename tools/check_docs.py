#!/usr/bin/env python3
"""Docs-consistency check: regenerate embedded snippets, fail on drift.

Markdown files under the repo embed two kinds of generated content,
delimited by HTML-comment markers:

- ``<!-- repro-help: ARGS -->`` … ``<!-- /repro-help -->`` — the output
  of ``repro ARGS --help`` (``ARGS`` may be empty for the top-level
  parser, or a subcommand path like ``trace record``), rendered at a
  fixed 80-column width so the text is stable across terminals;
- ``<!-- repro-trace-schema -->`` … ``<!-- /repro-trace-schema -->`` —
  the ``repro-trace-v1`` field tables, generated from
  ``repro.obs.schema.RECORD_TYPES`` (the single source of truth);
- ``<!-- repro-diagnosis-schema -->`` … ``<!-- /repro-diagnosis-schema -->``
  — the ``repro-diagnosis-v1`` document tables, generated from
  ``repro.diagnose.schema.DOCUMENT`` the same way;
- ``<!-- repro-campaign-schema -->`` … ``<!-- /repro-campaign-schema -->``
  — the ``repro-campaign-v1`` spec tables, generated from
  ``repro.campaign.schema.SPEC_SECTIONS`` (field, type, default,
  meaning);
- ``<!-- repro-importance-schema -->`` … ``<!-- /repro-importance-schema -->``
  — the ``repro-importance-v1`` report tables, generated from
  ``repro.campaign.schema.IMPORTANCE_DOCUMENT``;
- ``<!-- repro-remedy-schema -->`` … ``<!-- /repro-remedy-schema -->``
  — the ``repro-remediation-v1`` report tables, generated from
  ``repro.remedy.schema.DOCUMENT``;
- ``<!-- repro-service-schema -->`` … ``<!-- /repro-service-schema -->``
  — the ``repro-service-v1`` journal/heartbeat tables, generated from
  ``repro.service.schema.DOCUMENT``.

Run with no arguments to check (exit 1 on drift, printing what moved);
run with ``--write`` to rewrite the files in place.  CI runs the check
mode, so a CLI or schema change that forgets the docs fails the build.

Usage::

    PYTHONPATH=src python tools/check_docs.py            # check
    PYTHONPATH=src python tools/check_docs.py --write    # regenerate
"""

from __future__ import annotations

import argparse
import os
import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
DOC_FILES = [
    REPO / "README.md",
    REPO / "docs" / "OBSERVABILITY.md",
    REPO / "docs" / "ARCHITECTURE.md",
    REPO / "docs" / "PERFORMANCE.md",
    REPO / "docs" / "CAMPAIGNS.md",
    REPO / "docs" / "SERVICE.md",
]

_HELP_BLOCK = re.compile(
    r"(<!-- repro-help:(?P<args>[^>]*)-->\n)(?P<body>.*?)(<!-- /repro-help -->)",
    re.DOTALL,
)
_SCHEMA_BLOCK = re.compile(
    r"(<!-- repro-trace-schema -->\n)(?P<body>.*?)(<!-- /repro-trace-schema -->)",
    re.DOTALL,
)
_DIAGNOSIS_BLOCK = re.compile(
    r"(<!-- repro-diagnosis-schema -->\n)(?P<body>.*?)"
    r"(<!-- /repro-diagnosis-schema -->)",
    re.DOTALL,
)
_CAMPAIGN_BLOCK = re.compile(
    r"(<!-- repro-campaign-schema -->\n)(?P<body>.*?)"
    r"(<!-- /repro-campaign-schema -->)",
    re.DOTALL,
)
_IMPORTANCE_BLOCK = re.compile(
    r"(<!-- repro-importance-schema -->\n)(?P<body>.*?)"
    r"(<!-- /repro-importance-schema -->)",
    re.DOTALL,
)
_REMEDY_BLOCK = re.compile(
    r"(<!-- repro-remedy-schema -->\n)(?P<body>.*?)"
    r"(<!-- /repro-remedy-schema -->)",
    re.DOTALL,
)
_SERVICE_BLOCK = re.compile(
    r"(<!-- repro-service-schema -->\n)(?P<body>.*?)"
    r"(<!-- /repro-service-schema -->)",
    re.DOTALL,
)


def _subparser(parser: argparse.ArgumentParser, path: list[str]):
    """Resolve a subcommand path (e.g. ['trace', 'record']) to its parser."""
    for name in path:
        actions = [
            a for a in parser._actions
            if isinstance(a, argparse._SubParsersAction)
        ]
        if not actions or name not in actions[0].choices:
            raise SystemExit(f"no such subcommand in repro CLI: {path}")
        parser = actions[0].choices[name]
    return parser


def render_help(args_text: str) -> str:
    """``repro <path> --help`` as a fenced code block, 80 columns."""
    os.environ["COLUMNS"] = "80"
    from repro.cli import build_parser

    path = args_text.split()
    parser = _subparser(build_parser(), path)
    help_text = parser.format_help().rstrip("\n")
    return f"```text\n{help_text}\n```\n"


def _field_rows(fields: dict) -> list[str]:
    from repro.obs.schema import _type_name

    rows = []
    for name, (expected, description) in fields.items():
        rows.append(f"| `{name}` | `{_type_name(expected)}` | {description} |")
    return rows


def render_schema() -> str:
    """The repro-trace-v1 tables, from the live schema definition."""
    from repro.obs.schema import COMMON_FIELDS, RECORD_TYPES, SCHEMA

    lines = [
        f"Schema version: **`{SCHEMA}`** (generated from "
        "`repro.obs.schema.RECORD_TYPES` by `tools/check_docs.py`; "
        "edit the schema module, not this section).",
        "",
        "Common fields, present on every record:",
        "",
        "| field | type | meaning |",
        "|---|---|---|",
    ]
    lines += _field_rows(COMMON_FIELDS)
    for rtype, spec in RECORD_TYPES.items():
        lines += [
            "",
            f"### `{rtype}`",
            "",
            spec["doc"],
            "",
            "| field | type | meaning |",
            "|---|---|---|",
        ]
        lines += _field_rows(spec["fields"])
    return "\n".join(lines) + "\n"


def render_diagnosis_schema() -> str:
    """The repro-diagnosis-v1 tables, from the live document definition."""
    from repro.diagnose.report import SCHEMA
    from repro.diagnose.schema import DOCUMENT

    lines = [
        f"Schema version: **`{SCHEMA}`** (generated from "
        "`repro.diagnose.schema.DOCUMENT` by `tools/check_docs.py`; "
        "edit the schema module, not this section).",
    ]
    for kind, spec in DOCUMENT.items():
        lines += [
            "",
            f"### `{kind}`",
            "",
            spec["doc"],
            "",
            "| field | type | meaning |",
            "|---|---|---|",
        ]
        lines += _field_rows(spec["fields"])
    return "\n".join(lines) + "\n"


def render_campaign_schema() -> str:
    """The repro-campaign-v1 spec tables, from the live definitions."""
    from repro.campaign.schema import SPEC_SCHEMA, SPEC_SECTIONS, _type_name

    lines = [
        f"Schema version: **`{SPEC_SCHEMA}`** (generated from "
        "`repro.campaign.schema.SPEC_SECTIONS` by `tools/check_docs.py`; "
        "edit the schema module, not this section).",
    ]
    for section, spec in SPEC_SECTIONS.items():
        lines += [
            "",
            f"### `{section}`",
            "",
            spec["doc"],
            "",
            "| field | type | default | meaning |",
            "|---|---|---|---|",
        ]
        for name, (expected, default, description) in spec["fields"].items():
            lines.append(
                f"| `{name}` | `{_type_name(expected)}` | `{default}` "
                f"| {description} |"
            )
    return "\n".join(lines) + "\n"


def render_importance_schema() -> str:
    """The repro-importance-v1 report tables, from the live definitions."""
    from repro.campaign.schema import (
        IMPORTANCE_DOCUMENT,
        IMPORTANCE_SCHEMA,
        _type_name,
    )

    lines = [
        f"Schema version: **`{IMPORTANCE_SCHEMA}`** (generated from "
        "`repro.campaign.schema.IMPORTANCE_DOCUMENT` by "
        "`tools/check_docs.py`; edit the schema module, not this section).",
    ]
    for kind, spec in IMPORTANCE_DOCUMENT.items():
        lines += [
            "",
            f"### `{kind}`",
            "",
            spec["doc"],
            "",
            "| field | type | meaning |",
            "|---|---|---|",
        ]
        for name, (expected, description) in spec["fields"].items():
            lines.append(
                f"| `{name}` | `{_type_name(expected)}` | {description} |"
            )
    return "\n".join(lines) + "\n"


def render_remedy_schema() -> str:
    """The repro-remediation-v1 tables, from the live definitions."""
    from repro.remedy.report import SCHEMA
    from repro.remedy.schema import DOCUMENT

    lines = [
        f"Schema version: **`{SCHEMA}`** (generated from "
        "`repro.remedy.schema.DOCUMENT` by `tools/check_docs.py`; "
        "edit the schema module, not this section).",
    ]
    for kind, spec in DOCUMENT.items():
        lines += [
            "",
            f"### `{kind}`",
            "",
            spec["doc"],
            "",
            "| field | type | meaning |",
            "|---|---|---|",
        ]
        lines += _field_rows(spec["fields"])
    return "\n".join(lines) + "\n"


def render_service_schema() -> str:
    """The repro-service-v1 tables, from the live definitions."""
    from repro.service.schema import DOCUMENT, SERVICE_SCHEMA

    lines = [
        f"Schema version: **`{SERVICE_SCHEMA}`** (generated from "
        "`repro.service.schema.DOCUMENT` by `tools/check_docs.py`; "
        "edit the schema module, not this section).",
    ]
    for kind, spec in DOCUMENT.items():
        lines += [
            "",
            f"### `{kind}`",
            "",
            spec["doc"],
            "",
            "| field | type | meaning |",
            "|---|---|---|",
        ]
        lines += _field_rows(spec["fields"])
    return "\n".join(lines) + "\n"


def regenerate(text: str) -> str:
    """One file's content with every generated block refreshed."""

    def _help(match: re.Match) -> str:
        return (
            match.group(1) + render_help(match.group("args")) + match.group(4)
        )

    def _schema(match: re.Match) -> str:
        return match.group(1) + render_schema() + match.group(3)

    def _diagnosis(match: re.Match) -> str:
        return match.group(1) + render_diagnosis_schema() + match.group(3)

    def _campaign(match: re.Match) -> str:
        return match.group(1) + render_campaign_schema() + match.group(3)

    def _importance(match: re.Match) -> str:
        return match.group(1) + render_importance_schema() + match.group(3)

    def _remedy(match: re.Match) -> str:
        return match.group(1) + render_remedy_schema() + match.group(3)

    def _service(match: re.Match) -> str:
        return match.group(1) + render_service_schema() + match.group(3)

    text = _HELP_BLOCK.sub(_help, text)
    text = _SCHEMA_BLOCK.sub(_schema, text)
    text = _DIAGNOSIS_BLOCK.sub(_diagnosis, text)
    text = _CAMPAIGN_BLOCK.sub(_campaign, text)
    text = _IMPORTANCE_BLOCK.sub(_importance, text)
    text = _REMEDY_BLOCK.sub(_remedy, text)
    text = _SERVICE_BLOCK.sub(_service, text)
    return text


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--write", action="store_true",
                        help="rewrite files instead of checking")
    args = parser.parse_args(argv)

    stale = []
    for path in DOC_FILES:
        if not path.exists():
            print(f"missing doc file: {path}", file=sys.stderr)
            return 1
        current = path.read_text()
        fresh = regenerate(current)
        if fresh != current:
            if args.write:
                path.write_text(fresh)
                print(f"regenerated {path.relative_to(REPO)}")
            else:
                stale.append(path.relative_to(REPO))
    if stale:
        names = ", ".join(str(p) for p in stale)
        print(
            f"stale generated docs in: {names}\n"
            "run: PYTHONPATH=src python tools/check_docs.py --write",
            file=sys.stderr,
        )
        return 1
    if not args.write:
        print("docs are consistent with the CLI and trace schema")
    return 0


if __name__ == "__main__":
    sys.exit(main())
