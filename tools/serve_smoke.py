#!/usr/bin/env python3
"""Service smoke test: SIGKILL ``repro serve`` mid-campaign, restart, diff.

The service's promise is crash-safety end to end: a ``repro serve``
process SIGKILLed at an arbitrary instant restarts, replays its
``repro-service-v1`` journal, resumes the in-flight campaign from its
fsynced checkpoints, and finishes with an importance report
**byte-identical** to an uninterrupted run.  This tool is the CI
version against the real CLI:

1. compute the reference report with ``repro campaign run --json``;
2. start ``repro serve`` watching an empty spool, drop the spec in,
   wait until the campaign has checkpointed at least one cell, then
   SIGKILL the whole process group — no drain, no cleanup;
3. restart ``repro serve`` on the same directories, wait for
   ``/healthz`` to answer on the restarted service's port, then wait
   for the campaign to reach ``done`` via ``/campaigns/<id>``;
4. SIGTERM the service (graceful drain must exit 0) and fail unless
   the finished ``report.json`` is byte-identical to the reference.

Usage::

    PYTHONPATH=src python tools/serve_smoke.py
    PYTHONPATH=src python tools/serve_smoke.py --measure-ms 30
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request

REPO = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_SPEC = REPO / "examples" / "campaign_ablation.json"


def _serve_cmd(args, spool, state) -> list[str]:
    return [
        sys.executable, "-m", "repro", "serve",
        "--spool", str(spool), "--state", str(state),
        "--measure-ms", str(args.measure_ms),
        "--poll", "0.2",
    ]


def _checkpointed_results(state: pathlib.Path) -> int:
    count = 0
    for shard in state.glob("campaigns/*/checkpoint/shard-*.jsonl"):
        try:
            lines = shard.read_text().splitlines()
        except OSError:
            continue
        count += sum(1 for line in lines if '"status":"ok"' in line)
    return count


def _heartbeat_port(state: pathlib.Path) -> int | None:
    try:
        document = json.loads((state / "heartbeat.json").read_text())
    except (OSError, ValueError):
        return None
    port = document.get("port", 0)
    return port or None


def _get(port: int, path: str):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=5
    ) as response:
        return json.loads(response.read())


def _wait(predicate, deadline: float, what: str):
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(0.1)
    print(f"FAIL: timed out waiting for {what}", file=sys.stderr)
    raise SystemExit(1)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--spec", default=str(DEFAULT_SPEC))
    parser.add_argument("--measure-ms", type=int, default=30)
    parser.add_argument("--kill-after", type=int, default=1, metavar="N",
                        help="SIGKILL once N cells are checkpointed")
    parser.add_argument("--timeout", type=float, default=600.0)
    args = parser.parse_args(argv)
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")

    print("[1/4] reference: repro campaign run --json", flush=True)
    with tempfile.TemporaryDirectory(prefix="serve-smoke-") as tmp:
        tmpdir = pathlib.Path(tmp)
        reference_path = tmpdir / "reference.json"
        clean = subprocess.run(
            [
                sys.executable, "-m", "repro", "campaign", "run", args.spec,
                "--measure-ms", str(args.measure_ms),
                "--json", str(reference_path),
            ],
            env=env, capture_output=True, text=True, timeout=args.timeout,
        )
        if clean.returncode != 0:
            print(clean.stderr, file=sys.stderr)
            print("FAIL: reference campaign did not run", file=sys.stderr)
            return 1
        reference = reference_path.read_bytes()

        spool = tmpdir / "spool"
        state = tmpdir / "state"
        spool.mkdir()

        print(f"[2/4] interrupt: SIGKILL serve after {args.kill_after} "
              "checkpointed cell(s)", flush=True)
        victim = subprocess.Popen(
            _serve_cmd(args, spool, state), env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            start_new_session=True,
        )
        deadline = time.monotonic() + args.timeout
        # Only hand the service the spec once it is up (port bound and
        # heartbeat written), so the kill window is inside the campaign.
        _wait(lambda: _heartbeat_port(state), deadline, "first heartbeat")
        (spool / pathlib.Path(args.spec).name).write_bytes(
            pathlib.Path(args.spec).read_bytes()
        )
        _wait(
            lambda: (
                victim.poll() is not None
                or _checkpointed_results(state) >= args.kill_after
            ),
            deadline, "checkpointed cells",
        )
        if victim.poll() is not None:
            print("FAIL: serve exited before it could be killed",
                  file=sys.stderr)
            return 1
        os.killpg(victim.pid, signal.SIGKILL)
        victim.wait(timeout=30)
        done_at_kill = _checkpointed_results(state)
        print(f"      killed with {done_at_kill} cell(s) checkpointed",
              flush=True)

        print("[3/4] restart: same spool and state", flush=True)
        revived = subprocess.Popen(
            _serve_cmd(args, spool, state), env=env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            start_new_session=True,
        )
        try:
            deadline = time.monotonic() + args.timeout

            def healthz():
                port = _heartbeat_port(state)
                if port is None:
                    return None
                try:
                    document = _get(port, "/healthz")
                except (urllib.error.URLError, OSError):
                    return None
                return port if document.get("ok") else None

            port = _wait(healthz, deadline, "/healthz after restart")
            print(f"      /healthz OK on port {port}", flush=True)

            def campaign_done():
                try:
                    status = _get(port, "/status")
                except (urllib.error.URLError, OSError):
                    return None
                campaigns = status.get("campaigns", [])
                if not campaigns:
                    return None
                entry = campaigns[0]
                if entry["status"] == "failed":
                    print(f"FAIL: campaign failed: {entry['detail']}",
                          file=sys.stderr)
                    raise SystemExit(1)
                return entry if entry["status"] == "done" else None

            entry = _wait(campaign_done, deadline, "campaign completion")
            detail = _get(port, f"/campaigns/{entry['id']}")
            if detail.get("report") is None:
                print("FAIL: done campaign served no report", file=sys.stderr)
                return 1

            print("[4/4] drain: SIGTERM must exit 0", flush=True)
            revived.send_signal(signal.SIGTERM)
            code = revived.wait(timeout=60)
            if code != 0:
                print(f"FAIL: graceful drain exited {code}", file=sys.stderr)
                return 1
        finally:
            if revived.poll() is None:
                os.killpg(revived.pid, signal.SIGKILL)

        report = (state / "campaigns" / entry["id"] / "report.json")
        finished = report.read_bytes()
        if finished != reference:
            print("FAIL: post-crash report differs from the uninterrupted "
                  "reference", file=sys.stderr)
            return 1
        resumed = done_at_kill > 0
        print(f"OK: service survived SIGKILL (resumed "
              f"{done_at_kill} checkpointed cell(s): "
              f"{'yes' if resumed else 'n/a'}); report byte-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
