"""Tests for multi-seed replication statistics."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.loadgen.lancet import BenchConfig
from repro.loadgen.replications import (
    Replicated,
    _t95,
    replicate,
    replicated_sweep,
)
from repro.units import msecs


class TestT95:
    def test_exact_dof(self):
        assert _t95(1) == 12.706

    def test_floors_to_largest_tabulated(self):
        # dof=12 is not in the table; the lookup floors to dof=10.
        assert _t95(12) == 2.228

    def test_beyond_table_uses_normal(self):
        assert _t95(61) == 1.96

    def test_nonpositive_dof_rejected(self):
        with pytest.raises(WorkloadError):
            _t95(0)


class TestReplicated:
    def test_mean_and_interval(self):
        stats = Replicated.from_samples([10.0, 12.0, 14.0])
        assert stats.mean == 12.0
        assert stats.half_width_95 > 0
        assert stats.low < 12.0 < stats.high

    def test_identical_samples_zero_width(self):
        stats = Replicated.from_samples([5.0, 5.0, 5.0, 5.0])
        assert stats.half_width_95 == 0.0
        assert stats.relative_half_width == 0.0

    def test_needs_two_samples(self):
        with pytest.raises(WorkloadError):
            Replicated.from_samples([1.0])

    def test_wider_spread_wider_interval(self):
        tight = Replicated.from_samples([10.0, 10.1, 9.9])
        loose = Replicated.from_samples([5.0, 15.0, 10.0])
        assert loose.half_width_95 > tight.half_width_95

    def test_more_samples_narrow_interval(self):
        few = Replicated.from_samples([9.0, 11.0])
        many = Replicated.from_samples([9.0, 11.0, 9.0, 11.0, 9.0, 11.0,
                                        9.0, 11.0])
        assert many.half_width_95 < few.half_width_95


class TestReplicate:
    def _config(self):
        return BenchConfig(rate_per_sec=10_000.0, warmup_ns=msecs(5),
                           measure_ns=msecs(25))

    def test_replicates_across_seeds(self):
        stats = replicate(self._config(), seeds=(1, 2, 3))
        assert len(stats.samples) == 3
        # Different seeds give different (but close) latencies.
        assert len(set(stats.samples)) > 1
        assert stats.relative_half_width < 0.5

    def test_custom_metric(self):
        stats = replicate(
            self._config(), seeds=(1, 2),
            metric=lambda result: result.achieved_rate,
        )
        assert stats.mean == pytest.approx(10_000, rel=0.2)

    def test_sweep_shape(self):
        points = replicated_sweep(
            self._config(), rates=[8_000.0, 20_000.0], seeds=(1, 2)
        )
        assert [p.rate_per_sec for p in points] == [8_000.0, 20_000.0]
        assert points[1].latency.mean > points[0].latency.mean

    def test_tweak_threads_through(self):
        seen = []
        replicate(self._config(), seeds=(1, 2),
                  tweak=lambda bed: seen.append(bed))
        assert len(seen) == 2

    def test_sweep_tweak_threads_through(self):
        seen = []
        replicated_sweep(
            self._config(), rates=[8_000.0, 20_000.0], seeds=(1, 2),
            tweak=lambda bed: seen.append(bed),
        )
        assert len(seen) == 4  # 2 rates x 2 seeds


class TestParallelDeterminism:
    def test_workers_identical_to_serial(self):
        base = BenchConfig(rate_per_sec=10_000.0, warmup_ns=msecs(2),
                           measure_ns=msecs(10))
        rates = [8_000.0, 20_000.0]
        seeds = (1, 2)
        serial = replicated_sweep(base, rates, seeds, workers=1)
        parallel = replicated_sweep(base, rates, seeds, workers=4)
        # Exact equality, not approx: same configs -> same bits.
        assert parallel == serial
