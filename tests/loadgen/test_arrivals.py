"""Tests for workloads and arrival schedules."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.loadgen.arrivals import Workload, poisson_schedule, uniform_schedule
from repro.sim.rng import RngRegistry
from repro.units import SEC


@pytest.fixture
def stream():
    return RngRegistry(5).stream("arrivals")


class TestWorkload:
    def test_keys_have_exact_length(self):
        workload = Workload(key_bytes=16, keyspace=1024)
        for index in (0, 7, 1023):
            assert len(workload.make_key(index)) == 16

    def test_set_ratio_validation(self):
        with pytest.raises(WorkloadError):
            Workload(set_ratio=1.5).validate()

    def test_key_bytes_too_small_rejected(self):
        with pytest.raises(WorkloadError):
            Workload(key_bytes=3, keyspace=1024).validate()

    def test_request_mix(self, stream):
        workload = Workload(set_ratio=0.95)
        kinds = [
            workload.make_request(stream, 0).kind for _ in range(2000)
        ]
        set_fraction = kinds.count("SET") / len(kinds)
        assert 0.92 < set_fraction < 0.98

    def test_pure_set_workload(self, stream):
        workload = Workload(set_ratio=1.0)
        assert all(
            workload.make_request(stream, 0).kind == "SET" for _ in range(100)
        )

    def test_mean_request_wire_bytes(self):
        workload = Workload(set_ratio=1.0, key_bytes=16, value_bytes=16384)
        from repro.apps import resp

        assert workload.mean_request_wire_bytes() == resp.set_command_bytes(16, 16384)


class TestSchedules:
    def test_poisson_rate(self, stream):
        workload = Workload()
        events = list(
            poisson_schedule(stream, workload, 10_000.0, 0, SEC)
        )
        assert 9_000 < len(events) < 11_000
        times = [t for t, _ in events]
        assert times == sorted(times)
        assert all(0 <= t < SEC for t in times)

    def test_uniform_gaps(self, stream):
        workload = Workload()
        events = list(
            uniform_schedule(stream, workload, 1_000.0, 0, SEC // 100)
        )
        times = [t for t, _ in events]
        gaps = {b - a for a, b in zip(times, times[1:])}
        assert gaps == {SEC // 1000}

    def test_created_at_matches_schedule_time(self, stream):
        workload = Workload()
        for when, request in poisson_schedule(stream, workload, 5000.0, 0, SEC // 10):
            assert request.created_at == when

    def test_same_seed_same_schedule(self):
        workload = Workload()
        first = [
            t for t, _ in poisson_schedule(
                RngRegistry(9).stream("a"), workload, 5000.0, 0, SEC // 10
            )
        ]
        second = [
            t for t, _ in poisson_schedule(
                RngRegistry(9).stream("a"), workload, 5000.0, 0, SEC // 10
            )
        ]
        assert first == second
