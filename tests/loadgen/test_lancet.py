"""Integration tests for the benchmark harness (short runs)."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.loadgen.arrivals import Workload
from repro.loadgen.lancet import BenchConfig, build_testbed, run_benchmark
from repro.loadgen.sweep import estimated_curve, measured_curve, sweep_rates
from repro.units import KIB, msecs, usecs


def short_config(**overrides) -> BenchConfig:
    defaults = dict(
        rate_per_sec=10_000.0,
        workload=Workload(value_bytes=16 * KIB),
        warmup_ns=msecs(10),
        measure_ns=msecs(40),
    )
    defaults.update(overrides)
    return BenchConfig(**defaults)


class TestBenchConfig:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            BenchConfig(rate_per_sec=0).validate()
        with pytest.raises(WorkloadError):
            BenchConfig(rate_per_sec=1, arrival="weird").validate()
        with pytest.raises(WorkloadError):
            BenchConfig(rate_per_sec=1, measure_ns=0).validate()


class TestRunBenchmark:
    def test_achieves_offered_rate_below_saturation(self):
        result = run_benchmark(short_config())
        assert result.achieved_rate == pytest.approx(10_000, rel=0.15)
        assert result.latency.count > 200

    def test_latency_positive_and_ordered(self):
        result = run_benchmark(short_config())
        assert 0 < result.latency.p50_ns <= result.latency.p99_ns
        assert result.latency.mean_ns >= result.send_latency.mean_ns

    def test_estimate_present_and_plausible(self):
        result = run_benchmark(short_config())
        assert result.estimate is not None and result.estimate.defined
        # The byte estimate excludes app processing; it must be in the
        # same ballpark as (and below) the measured send latency.
        assert 0 < result.estimate.latency_ns < result.send_latency.mean_ns

    def test_hint_estimate_close_to_measured(self):
        result = run_benchmark(short_config())
        assert result.hint_latency_ns is not None
        assert result.hint_latency_ns == pytest.approx(
            result.send_latency.mean_ns, rel=0.25
        )
        assert result.hint_rps == pytest.approx(result.achieved_rate, rel=0.1)

    def test_utilizations_in_range(self):
        result = run_benchmark(short_config())
        for util in (
            result.client_app_util, result.client_net_util,
            result.server_app_util, result.server_net_util,
        ):
            assert 0.0 <= util <= 1.0
        assert result.server_net_util > 0.05

    def test_same_seed_reproducible(self):
        a = run_benchmark(short_config(seed=7))
        b = run_benchmark(short_config(seed=7))
        assert a.latency.mean_ns == b.latency.mean_ns
        assert a.achieved_rate == b.achieved_rate

    def test_different_seeds_differ(self):
        a = run_benchmark(short_config(seed=7))
        b = run_benchmark(short_config(seed=8))
        assert a.latency.mean_ns != b.latency.mean_ns

    def test_nagle_seed_parity(self):
        """Nagle on/off runs with the same seed see identical request
        sequences (the A/B property the sweeps rely on)."""
        off = run_benchmark(short_config(nagle=False, seed=3))
        on = run_benchmark(short_config(nagle=True, seed=3))
        assert off.latency.count == pytest.approx(on.latency.count, abs=5)

    def test_uniform_arrivals(self):
        result = run_benchmark(short_config(arrival="uniform"))
        assert result.achieved_rate == pytest.approx(10_000, rel=0.1)

    def test_tweak_hook_runs(self):
        seen = {}
        run_benchmark(short_config(), tweak=lambda bed: seen.update(ok=True))
        assert seen.get("ok")

    def test_mixed_workload_per_kind_stats(self):
        result = run_benchmark(
            short_config(workload=Workload(set_ratio=0.9, value_bytes=16 * KIB))
        )
        assert "SET" in result.per_kind
        assert "GET" in result.per_kind
        assert result.per_kind["SET"].count > result.per_kind["GET"].count


class TestMultiConnection:
    def test_connections_validated(self):
        with pytest.raises(WorkloadError):
            BenchConfig(rate_per_sec=1, connections=0).validate()

    def test_records_aggregate_across_connections(self):
        result = run_benchmark(short_config(connections=3))
        assert result.achieved_rate == pytest.approx(10_000, rel=0.15)
        assert result.latency.count > 200

    def test_estimates_averaged_across_connections(self):
        """§3.2: per-connection estimates averaged for a policy spanning
        multiple connections."""
        result = run_benchmark(short_config(connections=3))
        assert result.estimate is not None and result.estimate.defined
        assert result.estimate_rps == pytest.approx(result.achieved_rate, rel=0.15)
        assert result.hint_rps == pytest.approx(result.achieved_rate, rel=0.15)
        assert result.hint_latency_ns == pytest.approx(
            result.send_latency.mean_ns, rel=0.3
        )

    def test_single_and_multi_connection_latency_comparable(self):
        one = run_benchmark(short_config(connections=1))
        many = run_benchmark(short_config(connections=4))
        assert many.latency.mean_ns == pytest.approx(
            one.latency.mean_ns, rel=0.5
        )


class TestBuildTestbed:
    def test_components_wired(self):
        bed = build_testbed(short_config())
        assert bed.client_sock.peer is bed.server_sock
        assert bed.client_sock.exchange is bed.client_exchange
        assert bed.hint_session is not None

    def test_no_hints_mode(self):
        bed = build_testbed(short_config(use_hints=False))
        assert bed.hint_session is None


class TestSweep:
    def test_sweep_produces_monotone_load(self):
        points = sweep_rates(short_config(), [5_000.0, 15_000.0])
        assert [p.rate_per_sec for p in points] == [5_000.0, 15_000.0]
        measured = measured_curve(points)
        assert len(measured) == 2
        estimated = estimated_curve(points)
        assert len(estimated) == 2

    def test_latency_grows_with_load(self):
        points = sweep_rates(short_config(), [5_000.0, 35_000.0])
        assert (
            points[1].result.latency.mean_ns > points[0].result.latency.mean_ns
        )
