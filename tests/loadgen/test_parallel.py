"""Tests for the campaign parallel runner."""

from __future__ import annotations

import os

import pytest

from repro.errors import WorkloadError
from repro.loadgen.lancet import BenchConfig, run_benchmark
from repro.parallel import ParallelRunner, resolve_workers, run_campaign
from repro.units import msecs


def _double(x):
    return 2 * x


def _add(a, b):
    return a + b


def _configs(rates):
    return [
        BenchConfig(rate_per_sec=rate, warmup_ns=msecs(2), measure_ns=msecs(5))
        for rate in rates
    ]


class TestResolveWorkers:
    def test_zero_means_one_per_cpu(self):
        assert resolve_workers(0) == (os.cpu_count() or 1)

    def test_none_means_one_per_cpu(self):
        assert resolve_workers(None) == (os.cpu_count() or 1)

    def test_positive_passes_through(self):
        assert resolve_workers(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(WorkloadError):
            resolve_workers(-1)


class TestRunMany:
    def test_matches_serial_in_order(self):
        configs = _configs([8_000.0, 15_000.0, 25_000.0])
        serial = [run_benchmark(config) for config in configs]
        pooled = ParallelRunner(workers=2).run_many(configs)
        assert pooled == serial

    def test_more_workers_than_jobs(self):
        configs = _configs([8_000.0, 15_000.0])
        serial = [run_benchmark(config) for config in configs]
        assert ParallelRunner(workers=8).run_many(configs) == serial

    def test_unpicklable_tweak_falls_back_to_serial(self):
        configs = _configs([8_000.0, 15_000.0])
        seen = []
        with pytest.warns(UserWarning, match="not picklable"):
            results = ParallelRunner(workers=2).run_many(
                configs, tweak=lambda bed: seen.append(bed)
            )
        # The fallback runs in-process, so the closure still fires.
        assert len(seen) == 2
        assert len(results) == 2

    def test_serial_runner_keeps_tweak_side_effects(self):
        configs = _configs([8_000.0])
        seen = []
        ParallelRunner(workers=1).run_many(
            configs, tweak=lambda bed: seen.append(bed)
        )
        assert len(seen) == 1

    def test_run_campaign_convenience(self):
        configs = _configs([8_000.0, 15_000.0])
        assert run_campaign(configs, workers=2) == run_campaign(configs)


class TestMap:
    def test_single_argument_items(self):
        assert ParallelRunner(workers=2).map(_double, [1, 2, 3]) == [2, 4, 6]

    def test_tuple_items_unpack_as_positional_args(self):
        items = [(1, 10), (2, 20), (3, 30)]
        assert ParallelRunner(workers=2).map(_add, items) == [11, 22, 33]

    def test_serial_map(self):
        assert ParallelRunner(workers=1).map(_double, [4, 5]) == [8, 10]
