"""Tests for latency statistics."""

from __future__ import annotations

import math

import pytest

from repro.errors import WorkloadError
from repro.loadgen.stats import LatencySummary, percentile, summarize, throughput_per_sec
from repro.units import SEC


class TestPercentile:
    def test_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile(values, 0.50) == 50
        assert percentile(values, 0.99) == 99
        assert percentile(values, 1.0) == 100
        assert percentile(values, 0.0) == 1

    def test_single_sample(self):
        assert percentile([7], 0.5) == 7

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            percentile([], 0.5)

    def test_bad_fraction_rejected(self):
        with pytest.raises(WorkloadError):
            percentile([1], 1.5)


class TestSummarize:
    def test_basic_summary(self):
        summary = summarize([10, 20, 30, 40])
        assert summary.count == 4
        assert summary.mean_ns == 25
        assert summary.max_ns == 40
        assert summary.p50_ns == 20

    def test_empty_summary_is_nan(self):
        summary = summarize([])
        assert summary.count == 0
        assert math.isnan(summary.mean_ns)

    def test_stddev(self):
        summary = summarize([10, 10, 10])
        assert summary.stddev_ns == 0
        spread = summarize([0, 20])
        assert spread.stddev_ns == pytest.approx(10)


class TestThroughput:
    def test_per_second(self):
        assert throughput_per_sec(500, SEC) == 500
        assert throughput_per_sec(500, SEC // 2) == 1000

    def test_invalid_window(self):
        with pytest.raises(WorkloadError):
            throughput_per_sec(1, 0)
