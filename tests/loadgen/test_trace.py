"""Tests for trace record/replay and distributed value sizes."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.loadgen.arrivals import Workload, poisson_schedule
from repro.loadgen.trace import (
    TraceEntry,
    load_trace,
    record_schedule,
    save_trace,
    trace_schedule,
)
from repro.sim.rng import RngRegistry
from repro.units import SEC


@pytest.fixture
def stream():
    return RngRegistry(3).stream("trace")


class TestTraceRoundtrip:
    def test_record_save_load_replay(self, stream, tmp_path):
        workload = Workload(set_ratio=0.9)
        original = record_schedule(
            poisson_schedule(stream, workload, 5_000.0, 0, SEC // 20)
        )
        path = tmp_path / "load.jsonl"
        count = save_trace(original, path)
        assert count == len(original)

        loaded = load_trace(path)
        assert loaded == original

        replayed = list(trace_schedule(loaded))
        assert len(replayed) == len(original)
        for entry, (when, request) in zip(original, replayed):
            assert when == entry.time_ns
            assert request.kind == entry.kind
            assert request.key == entry.key
            assert request.value_bytes == entry.value_bytes

    def test_time_shift_and_scale(self):
        entries = [
            TraceEntry(1000, "SET", "k", 10),
            TraceEntry(3000, "GET", "k", 10),
        ]
        replayed = list(trace_schedule(entries, start_ns=500, time_scale=0.5))
        assert [when for when, _ in replayed] == [1000, 2000]

    def test_bad_scale_rejected(self):
        with pytest.raises(WorkloadError):
            list(trace_schedule([], time_scale=0))

    def test_bad_line_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"t": 1, "kind": "SET"}\n')
        with pytest.raises(WorkloadError):
            load_trace(path)

    def test_backwards_time_rejected(self, tmp_path):
        path = tmp_path / "back.jsonl"
        save_trace(
            [TraceEntry(100, "SET", "k", 1), TraceEntry(50, "SET", "k", 1)],
            path,
        )
        with pytest.raises(WorkloadError):
            load_trace(path)

    def test_replay_through_full_benchmark(self, stream, tmp_path):
        """A recorded trace drives a real run via the tweak hook."""
        from repro.loadgen.lancet import BenchConfig, build_testbed
        from repro.units import msecs

        workload = Workload()
        entries = record_schedule(
            poisson_schedule(stream, workload, 8_000.0, msecs(1), msecs(40))
        )
        config = BenchConfig(rate_per_sec=8_000.0, warmup_ns=msecs(5),
                             measure_ns=msecs(50))
        bed = build_testbed(config)
        for index in range(workload.keyspace):
            bed.server.store.set(workload.make_key(index), workload.value_bytes)
        bed.server.start()
        bed.client.start(trace_schedule(entries))
        bed.sim.run(until=msecs(60))
        assert bed.client.responses_received == len(entries)


class TestValueDistribution:
    def test_sampling_follows_weights(self, stream):
        workload = Workload(value_dist=((100, 0.75), (10_000, 0.25)))
        sizes = [
            workload.make_request(stream, 0).value_bytes for _ in range(4000)
        ]
        small_fraction = sizes.count(100) / len(sizes)
        assert 0.70 < small_fraction < 0.80
        assert set(sizes) == {100, 10_000}

    def test_mean_value_bytes(self):
        workload = Workload(value_dist=((100, 1.0), (300, 1.0)))
        assert workload.mean_value_bytes() == 200

    def test_fixed_size_unchanged(self, stream):
        workload = Workload(value_bytes=512)
        assert workload.make_request(stream, 0).value_bytes == 512
        assert workload.mean_value_bytes() == 512

    def test_validation(self):
        with pytest.raises(WorkloadError):
            Workload(value_dist=()).validate()
        with pytest.raises(WorkloadError):
            Workload(value_dist=((100, 0.0),)).validate()
        with pytest.raises(WorkloadError):
            Workload(value_dist=((-1, 1.0),)).validate()
