"""The metrics registry: counters, gauges, histograms, snapshots."""

from __future__ import annotations

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.metrics import (
    METRICS_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    collect_run_metrics,
)


class TestCounter:
    def test_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ObservabilityError):
            Counter().inc(-1)


class TestGauge:
    def test_last_set_wins(self):
        gauge = Gauge()
        assert gauge.value is None
        gauge.set(1.5)
        gauge.set(2.5)
        assert gauge.value == 2.5


class TestHistogram:
    def test_summary_stats(self):
        hist = Histogram()
        for value in (1, 2, 3, 100):
            hist.observe(value)
        assert hist.count == 4
        assert hist.min == 1
        assert hist.max == 100
        assert hist.mean == pytest.approx(26.5)

    def test_power_of_two_buckets(self):
        hist = Histogram()
        hist.observe(1)      # bucket 0
        hist.observe(2)      # bucket 1
        hist.observe(3)      # bucket 2
        hist.observe(1024)   # bucket 10
        assert hist.buckets == {0: 1, 1: 1, 2: 1, 10: 1}

    def test_rejects_negative(self):
        with pytest.raises(ObservabilityError):
            Histogram().observe(-1)

    def test_empty_mean_is_none(self):
        assert Histogram().mean is None


class TestRegistry:
    def test_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert len(registry) == 1
        assert "a" in registry

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ObservabilityError):
            registry.gauge("a")

    def test_snapshot_shape_and_determinism(self):
        registry = MetricsRegistry()
        registry.counter("z.count").inc(3)
        registry.gauge("a.level").set(0.5)
        registry.histogram("m.dist").observe(7)
        snapshot = registry.snapshot()
        assert snapshot["schema"] == METRICS_SCHEMA
        assert snapshot["counters"] == {"z.count": 3}
        assert snapshot["gauges"] == {"a.level": 0.5}
        assert snapshot["histograms"]["m.dist"]["count"] == 1
        # JSON-serializable, and stable across identical registries.
        json.dumps(snapshot)
        assert snapshot == registry.snapshot()


class TestCollectRunMetrics:
    @pytest.mark.slow
    def test_standard_catalog(self):
        from repro.experiments.fig4a import default_config
        from repro.loadgen.lancet import run_benchmark
        from repro.units import msecs

        holder = {}

        def tweak(bed):
            holder["bed"] = bed

        config = default_config(measure_ns=msecs(40))
        result = run_benchmark(config, tweak=tweak)
        registry = collect_run_metrics(holder["bed"], result=result)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["exchange.client.states_sent"] > 0
        assert snapshot["counters"]["nic.client.tx_wire_packets"] > 0
        assert snapshot["gauges"]["run.achieved_rate"] > 0
        json.dumps(snapshot)
