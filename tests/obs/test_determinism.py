"""The observability invariants: zero perturbation, full determinism.

The two acceptance properties of the tracing layer:

- a run with tracing *disabled* (or absent) produces results identical
  to a traced run — instrumentation never changes what is measured;
- the same seed produces the *identical* record stream, byte for byte
  once serialized — traces are reproducible artifacts, not samples.
"""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.experiments.fig4a import default_config
from repro.loadgen.lancet import run_benchmark
from repro.obs import ListSink, Tracer, validate_stream
from repro.units import msecs


def _config(seed: int = 3):
    return replace(
        default_config(measure_ns=msecs(40)),
        rate_per_sec=8_000.0,
        seed=seed,
    )


def _key_numbers(result) -> tuple:
    return (
        result.achieved_rate,
        result.latency,
        result.send_latency,
        result.client_wire_packets,
        result.server_deliveries,
        result.server_mean_batch,
    )


@pytest.mark.slow
class TestNoPerturbation:
    def test_traced_equals_untraced(self):
        plain = run_benchmark(_config())
        tracer = Tracer(sink=ListSink())
        traced = run_benchmark(_config(), tracer=tracer)
        assert _key_numbers(plain) == _key_numbers(traced)
        assert tracer.emitted > 0

    def test_disabled_tracer_equals_untraced(self):
        plain = run_benchmark(_config())
        tracer = Tracer(sink=ListSink(), enabled=False)
        disabled = run_benchmark(_config(), tracer=tracer)
        assert _key_numbers(plain) == _key_numbers(disabled)
        assert tracer.records == []
        assert tracer.emitted == 0


@pytest.mark.slow
class TestReproducibleStreams:
    def test_same_seed_identical_stream(self):
        streams = []
        for _ in range(2):
            tracer = Tracer(sink=ListSink(), label="det")
            run_benchmark(_config(seed=7), tracer=tracer)
            streams.append(
                "\n".join(
                    json.dumps(r, sort_keys=True) for r in tracer.records
                )
            )
        assert streams[0] == streams[1]

    def test_stream_validates_and_is_stamped(self):
        tracer = Tracer(sink=ListSink())
        run_benchmark(_config(), tracer=tracer)
        records = tracer.records
        assert validate_stream(records) == []
        # Simulated-time stamps: monotone non-decreasing, header first.
        times = [record["t"] for record in records]
        assert times == sorted(times)
        types = {record["type"] for record in records}
        assert "queue.sample" in types
        assert "exchange.send" in types
        assert "exchange.recv" in types
