"""Sinks: list, ring, and the JSONL round trip."""

from __future__ import annotations

import pytest

from repro.errors import ObservabilityError
from repro.obs.sinks import (
    JsonlSink,
    ListSink,
    RingSink,
    iter_records,
    read_jsonl,
)


def _record(i: int) -> dict:
    return {"t": i, "type": "log.message", "src": "log", "message": str(i)}


class TestListSink:
    def test_keeps_everything_in_order(self):
        sink = ListSink()
        for i in range(5):
            sink.append(_record(i))
        assert [r["t"] for r in sink] == [0, 1, 2, 3, 4]
        assert len(sink) == 5


class TestRingSink:
    def test_evicts_oldest(self):
        sink = RingSink(capacity=3)
        for i in range(10):
            sink.append(_record(i))
        assert [r["t"] for r in sink.records] == [7, 8, 9]
        assert sink.dropped == 7

    def test_capacity_must_be_positive(self):
        with pytest.raises(ObservabilityError):
            RingSink(capacity=0)


class TestJsonlSink:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        records = [_record(i) for i in range(4)]
        for record in records:
            sink.append(record)
        sink.close()
        assert read_jsonl(path) == records

    def test_lazy_open(self, tmp_path):
        path = tmp_path / "never.jsonl"
        sink = JsonlSink(path)
        sink.close()
        assert not path.exists()

    def test_parents_created(self, tmp_path):
        path = tmp_path / "a" / "b" / "trace.jsonl"
        sink = JsonlSink(path)
        sink.append(_record(0))
        sink.close()
        assert path.exists()

    def test_read_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"t": 1}\nnot json\n')
        with pytest.raises(ObservabilityError):
            read_jsonl(path)

    def test_read_rejects_non_object(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("[1, 2]\n")
        with pytest.raises(ObservabilityError):
            read_jsonl(path)


class TestIterRecords:
    def test_normalizes_all_sources(self, tmp_path):
        records = [_record(0)]
        sink = ListSink()
        sink.append(records[0])
        path = tmp_path / "t.jsonl"
        JsonlSink(path).append(records[0])
        assert list(iter_records(sink)) == records
        assert list(iter_records(records)) == records
        assert list(iter_records(path)) == records
