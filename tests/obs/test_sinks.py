"""Sinks: list, ring, and the JSONL round trip."""

from __future__ import annotations

import pytest

from repro.errors import ObservabilityError
from repro.obs.sinks import (
    JsonlSink,
    JsonlTail,
    ListSink,
    RingSink,
    iter_records,
    read_jsonl,
)


def _record(i: int) -> dict:
    return {"t": i, "type": "log.message", "src": "log", "message": str(i)}


class TestListSink:
    def test_keeps_everything_in_order(self):
        sink = ListSink()
        for i in range(5):
            sink.append(_record(i))
        assert [r["t"] for r in sink] == [0, 1, 2, 3, 4]
        assert len(sink) == 5


class TestRingSink:
    def test_evicts_oldest(self):
        sink = RingSink(capacity=3)
        for i in range(10):
            sink.append(_record(i))
        assert [r["t"] for r in sink.records] == [7, 8, 9]
        assert sink.dropped == 7

    def test_capacity_must_be_positive(self):
        with pytest.raises(ObservabilityError):
            RingSink(capacity=0)


class TestJsonlSink:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(path)
        records = [_record(i) for i in range(4)]
        for record in records:
            sink.append(record)
        sink.close()
        assert read_jsonl(path) == records

    def test_lazy_open(self, tmp_path):
        path = tmp_path / "never.jsonl"
        sink = JsonlSink(path)
        sink.close()
        assert not path.exists()

    def test_parents_created(self, tmp_path):
        path = tmp_path / "a" / "b" / "trace.jsonl"
        sink = JsonlSink(path)
        sink.append(_record(0))
        sink.close()
        assert path.exists()

    def test_read_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"t": 1}\nnot json\n')
        with pytest.raises(ObservabilityError):
            read_jsonl(path)

    def test_read_rejects_non_object(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("[1, 2]\n")
        with pytest.raises(ObservabilityError):
            read_jsonl(path)


class TestIterRecords:
    def test_normalizes_all_sources(self, tmp_path):
        records = [_record(0)]
        sink = ListSink()
        sink.append(records[0])
        path = tmp_path / "t.jsonl"
        JsonlSink(path).append(records[0])
        assert list(iter_records(sink)) == records
        assert list(iter_records(records)) == records
        assert list(iter_records(path)) == records


class TestTruncatedTail:
    def test_torn_final_line_dropped_by_default(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text('{"t": 1}\n{"t": 2}\n{"t": 3, "ty')
        assert [r["t"] for r in read_jsonl(path)] == [1, 2]

    def test_torn_final_line_faults_when_strict(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text('{"t": 1}\n{"t": 2, "ty')
        with pytest.raises(ObservabilityError):
            read_jsonl(path, tolerate_truncated_tail=False)

    def test_garbage_mid_file_always_faults(self, tmp_path):
        # Tolerance is for the *tail* only: an unterminated broken line
        # followed by nothing is a torn write; broken JSON with records
        # after it is corruption.
        path = tmp_path / "bad.jsonl"
        path.write_text('{"t": 1, "ty\n{"t": 2}\n')
        with pytest.raises(ObservabilityError):
            read_jsonl(path)

    def test_complete_final_line_must_parse(self, tmp_path):
        # A newline-terminated line was fully flushed; failures there
        # are corruption even with tolerance on.
        path = tmp_path / "bad.jsonl"
        path.write_text('{"t": 1}\nnot json\n')
        with pytest.raises(ObservabilityError):
            read_jsonl(path)


class TestJsonlTail:
    def test_polls_deliver_increments_once(self, tmp_path):
        path = tmp_path / "grow.jsonl"
        tail = JsonlTail(path)
        path.write_text('{"t": 1}\n')
        assert [r["t"] for r in tail.poll()] == [1]
        assert tail.poll() == []
        with path.open("a") as handle:
            handle.write('{"t": 2}\n{"t": 3}\n')
        assert [r["t"] for r in tail.poll()] == [2, 3]
        assert tail.records_read == 3

    def test_partial_line_buffered_until_complete(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text('{"t": 1}\n{"t": 2')
        tail = JsonlTail(path)
        assert [r["t"] for r in tail.poll()] == [1]
        with path.open("a") as handle:
            handle.write(', "x": 0}\n')
        assert [r["t"] for r in tail.poll()] == [2]

    def test_missing_file_is_quiet(self, tmp_path):
        tail = JsonlTail(tmp_path / "absent.jsonl")
        assert tail.poll() == []
        (tmp_path / "absent.jsonl").write_text('{"t": 9}\n')
        assert [r["t"] for r in tail.poll()] == [9]

    def test_shrunk_file_reread_from_start(self, tmp_path):
        path = tmp_path / "rotate.jsonl"
        path.write_text('{"t": 1}\n{"t": 2}\n')
        tail = JsonlTail(path)
        assert len(tail.poll()) == 2
        path.write_text('{"t": 7}\n')  # rewritten: a fresh stream
        assert [r["t"] for r in tail.poll()] == [7]

    def test_non_object_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("[1]\n")
        with pytest.raises(ObservabilityError):
            JsonlTail(path).poll()
