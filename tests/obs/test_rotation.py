"""JsonlTail under log rotation, and a live follower surviving it.

Rotation is the service's log-management pattern: the file a follower
is attached to is truncated in place, or unlinked and recreated, while
the follower keeps polling.  The tail must treat the rotated file as a
fresh stream at the same path — re-read from the start, drop any
buffered partial line from the old incarnation, and never yield a
record twice — and ``repro diagnose --follow`` built on top must ride
through the event without crashing or losing the new stream.
"""

from __future__ import annotations

import json

from repro.diagnose import diagnose_records, follow_trace
from repro.obs.sinks import JsonlTail

from tests.diagnose.conftest import header, tcp_tx


def _write(path, records, mode="a", partial=None):
    with open(path, mode) as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")
        if partial is not None:
            handle.write(partial)  # no newline: a torn write in flight


def _events(start, count, src="conn.0.a"):
    return [
        tcp_tx((start + i) * 1_000_000, src=src) for i in range(count)
    ]


class TestTruncateInPlace:
    def test_truncated_file_is_reread_from_the_start(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        _write(path, _events(1, 5))
        tail = JsonlTail(path)
        assert len(tail.poll()) == 5

        # Rotate: truncate in place, then write a shorter fresh stream.
        _write(path, _events(100, 2), mode="w")
        records = tail.poll()
        assert [r["t"] for r in records] == [100_000_000, 101_000_000]
        assert tail.records_read == 7

    def test_partial_line_from_the_old_file_is_dropped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        _write(path, _events(1, 2), partial='{"t": 3, "typ')
        tail = JsonlTail(path)
        assert len(tail.poll()) == 2  # torn tail buffered, not parsed

        _write(path, _events(100, 3), mode="w")
        records = tail.poll()
        # The buffered fragment must not be glued onto the new stream.
        assert [r["t"] for r in records] == [
            100_000_000, 101_000_000, 102_000_000,
        ]


class TestUnlinkAndRecreate:
    def test_recreated_file_is_reread_from_the_start(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        _write(path, _events(1, 5))
        tail = JsonlTail(path)
        assert len(tail.poll()) == 5

        path.unlink()
        assert tail.poll() == []  # gone is quiet, not an error

        _write(path, _events(100, 3))
        assert [r["t"] for r in tail.poll()] == [
            100_000_000, 101_000_000, 102_000_000,
        ]

    def test_recreated_file_larger_than_the_old_offset(self, tmp_path):
        # The subtle case: by the time the follower polls again, the
        # replacement file has already grown *past* the old offset, so
        # size alone cannot reveal the rotation — the inode does.
        path = tmp_path / "trace.jsonl"
        _write(path, _events(1, 3))
        tail = JsonlTail(path)
        assert len(tail.poll()) == 3

        path.unlink()
        _write(path, _events(100, 50))
        records = tail.poll()
        assert len(records) == 50
        assert records[0]["t"] == 100_000_000


class _RotatingFeeder:
    """Clock/sleep pair that rotates the file mid-follow."""

    def __init__(self, path, before, after):
        self.path = path
        self.steps = [
            ("append", before),
            ("rotate", after),
        ]
        self.now = 0.0

    def clock(self):
        return self.now

    def sleep(self, seconds):
        self.now += seconds
        if not self.steps:
            return
        action, records = self.steps.pop(0)
        _write(self.path, records, mode="w" if action == "rotate" else "a")


class TestFollowSurvivesRotation:
    def test_follow_trace_rides_through_a_rotation(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.touch()
        before = [header(label="first")] + [
            tcp_tx(t * 1_000_000, retransmit=(t % 5 == 0))
            for t in range(1, 30)
        ]
        after = [header(label="second")] + [
            tcp_tx(t * 1_000_000, retransmit=(t % 5 == 0))
            for t in range(1, 30)
        ]
        feeder = _RotatingFeeder(path, before, after)
        report = follow_trace(
            path, poll_s=1.0, idle_timeout_s=3.0,
            clock=feeder.clock, sleep=feeder.sleep,
        )
        # The recreated file is a fresh stream: the follower saw the old
        # records then the new ones, exactly as an offline pass over the
        # concatenation would.
        offline = diagnose_records(before + after)
        assert report.to_canonical() == offline.to_canonical()
