"""ProgressLog behavior and trace post-processing helpers."""

from __future__ import annotations

import io

from repro.obs import (
    NULL_LOG,
    ListSink,
    ProgressLog,
    Tracer,
    filter_records,
    render_summary,
    summarize_records,
)


class TestProgressLog:
    def test_writes_to_stream(self):
        stream = io.StringIO()
        log = ProgressLog(stream=stream)
        log.info("working")
        assert stream.getvalue() == "working\n"
        assert log.messages == ["working"]

    def test_quiet_silences_stream(self):
        stream = io.StringIO()
        log = ProgressLog(quiet=True, stream=stream)
        log.info("working")
        assert stream.getvalue() == ""
        assert log.messages == ["working"]

    def test_mirrors_into_tracer(self):
        tracer = Tracer(sink=ListSink())
        log = ProgressLog(quiet=True, tracer=tracer)
        log.info("working")
        assert tracer.records[-1]["type"] == "log.message"
        assert tracer.records[-1]["message"] == "working"

    def test_null_log_retains_nothing(self):
        NULL_LOG.info("dropped")
        assert NULL_LOG.messages == []


def _records():
    return [
        {"t": 0, "type": "trace.header", "src": "tracer"},
        {"t": 10, "type": "log.message", "src": "log", "message": "a"},
        {"t": 20, "type": "log.message", "src": "log", "message": "b"},
        {"t": 30, "type": "tcp.event", "src": "client", "event": "tx"},
    ]


class TestFilter:
    def test_by_type(self):
        out = list(filter_records(_records(), type_="log.message"))
        assert [r["t"] for r in out] == [10, 20]

    def test_by_src_and_window(self):
        out = list(filter_records(_records(), src="log", since_ns=15))
        assert [r["t"] for r in out] == [20]
        out = list(filter_records(_records(), until_ns=15))
        assert [r["t"] for r in out] == [0, 10]


class TestSummary:
    def test_counts_and_span(self):
        summary = summarize_records(_records())
        assert summary["records"] == 4
        assert summary["start_ns"] == 0
        assert summary["end_ns"] == 30
        assert summary["span_ns"] == 30
        assert summary["by_type"]["log.message"] == 2
        assert summary["by_src"]["log"] == 2

    def test_empty_stream(self):
        summary = summarize_records([])
        assert summary["records"] == 0
        assert summary["span_ns"] is None
        assert render_summary(summary) == "records: 0"

    def test_render_mentions_types(self):
        text = render_summary(summarize_records(_records()))
        assert "log.message" in text
        assert "by source:" in text
