"""Schema validation: records and streams against repro-trace-v1."""

from __future__ import annotations

import pytest

from repro.errors import ObservabilityError
from repro.obs.schema import (
    RECORD_TYPES,
    SCHEMA,
    require_valid_stream,
    validate_record,
    validate_stream,
)

HEADER = {
    "t": 0, "type": "trace.header", "src": "tracer",
    "schema": SCHEMA, "label": None,
}
DECISION = {
    "t": 4_000_000, "type": "toggler.decision", "src": "toggler",
    "tick": 1, "mode": True, "prev_mode": False, "toggled": True,
    "explored": False, "phase": "measure", "sample_latency_ns": 123.0,
    "ewma": {"nagle_off": {}, "nagle_on": {}},
}


class TestValidateRecord:
    def test_valid_header(self):
        assert validate_record(HEADER) == []

    def test_valid_decision(self):
        assert validate_record(DECISION) == []

    def test_non_dict_rejected(self):
        assert validate_record([1, 2, 3])

    def test_missing_common_field(self):
        record = dict(DECISION)
        del record["src"]
        assert any("src" in p for p in validate_record(record))

    def test_missing_typed_field(self):
        record = dict(DECISION)
        del record["ewma"]
        assert any("ewma" in p for p in validate_record(record))

    def test_unknown_type(self):
        record = {"t": 0, "type": "nope.nope", "src": "x"}
        assert any("unknown record type" in p for p in validate_record(record))

    def test_extra_field_rejected(self):
        record = dict(DECISION, surprise=1)
        assert any("surprise" in p for p in validate_record(record))

    def test_wrong_type_rejected(self):
        record = dict(DECISION, tick="one")
        assert any("tick" in p for p in validate_record(record))

    def test_bool_is_not_int(self):
        # int fields must not silently accept True/False.
        record = dict(DECISION, tick=True)
        assert any("tick" in p for p in validate_record(record))

    def test_nullable_fields_accept_null(self):
        record = dict(DECISION, sample_latency_ns=None)
        assert validate_record(record) == []

    def test_every_type_has_doc_and_fields(self):
        for rtype, spec in RECORD_TYPES.items():
            assert spec["doc"], rtype
            assert spec["fields"], rtype


class TestValidateStream:
    def test_header_first_required(self):
        problems = validate_stream([DECISION, HEADER])
        assert any("trace.header" in p for p in problems)

    def test_wrong_schema_version(self):
        bad = dict(HEADER, schema="repro-trace-v0")
        assert any("repro-trace-v0" in p for p in validate_stream([bad]))

    def test_empty_stream_rejected(self):
        assert validate_stream([]) == ["stream is empty (no header)"]

    def test_valid_stream(self):
        assert validate_stream([HEADER, DECISION]) == []

    def test_require_valid_stream_raises(self):
        with pytest.raises(ObservabilityError):
            require_valid_stream([DECISION])
        require_valid_stream([HEADER, DECISION])  # no raise
