"""The Tracer: header discipline, typed helpers, the disabled path."""

from __future__ import annotations

from repro.obs.schema import SCHEMA, validate_stream
from repro.obs.sinks import ListSink
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.core.qstate import QueueSnapshot


def _tracer():
    return Tracer(sink=ListSink(), clock=lambda: 42, label="test")


class TestLifecycle:
    def test_header_written_lazily(self):
        tracer = _tracer()
        assert tracer.records == []
        tracer.log_message("hello")
        assert tracer.records[0]["type"] == "trace.header"
        assert tracer.records[0]["schema"] == SCHEMA
        assert tracer.records[0]["label"] == "test"
        assert tracer.emitted == 2

    def test_header_written_once(self):
        tracer = _tracer()
        tracer.log_message("a")
        tracer.log_message("b")
        headers = [r for r in tracer.records if r["type"] == "trace.header"]
        assert len(headers) == 1

    def test_clock_stamps_records(self):
        tracer = _tracer()
        tracer.log_message("x")
        assert all(record["t"] == 42 for record in tracer.records)

    def test_bind_clock_accepts_sim_like(self):
        class FakeSim:
            now = 7

        tracer = Tracer(sink=ListSink())
        tracer.bind_clock(FakeSim())
        tracer.log_message("x")
        assert tracer.records[-1]["t"] == 7

    def test_unbound_clock_stamps_zero(self):
        tracer = Tracer(sink=ListSink())
        tracer.log_message("x")
        assert tracer.records[-1]["t"] == 0


class TestDisabled:
    def test_null_tracer_is_inert(self):
        before = len(NULL_TRACER.records)
        NULL_TRACER.log_message("nope")
        NULL_TRACER.emit("tcp.event", "x", event="tx", detail=None)
        assert len(NULL_TRACER.records) == before
        assert not NULL_TRACER.enabled

    def test_disabled_tracer_emits_nothing(self):
        tracer = Tracer(sink=ListSink(), enabled=False)
        tracer.log_message("nope")
        tracer.metrics_snapshot({"schema": "repro-metrics-v1"})
        assert tracer.records == []
        assert tracer.emitted == 0


class TestTypedHelpers:
    def test_every_helper_conforms_to_schema(self):
        tracer = _tracer()
        snap = QueueSnapshot(time=1, total=2, integral=3)

        class Candidate:
            unacked = snap
            unread = snap
            ackdelay = snap

        class Delays:
            unacked = 1.0
            unread = 2.0
            ackdelay = None

        class Sample:
            interval_ns = 1000
            local = Delays()
            remote = None
            latency_ns = 3.0
            throughput_per_sec = 10.0
            complete = False

        tracer.queue_sample("client", snap, snap, snap)
        tracer.exchange_send("client", 36, demand=False, hint=True)
        tracer.exchange_recv("client", "accepted", Candidate())
        tracer.estimator_sample("client", Sample(), clamped=None)
        tracer.estimator_reject("client", "stale", staleness_ns=5)
        tracer.toggler_decision(
            "toggler", tick=1, mode=True, prev_mode=False, explored=True,
            phase="measure", sample_latency_ns=1.0,
            ewma={"nagle_off": {}, "nagle_on": {}},
        )
        tracer.fault_verdict("link.forward", "link", "loss-drop")
        tracer.tcp_event("client", "tx", detail={"bytes": 100})
        tracer.log_message("done")
        tracer.metrics_snapshot({"schema": "repro-metrics-v1"})
        assert validate_stream(tracer.records) == []

    def test_toggled_derived_from_modes(self):
        tracer = _tracer()
        tracer.toggler_decision(
            "t", tick=1, mode=True, prev_mode=True, explored=False,
            phase="measure", sample_latency_ns=None, ewma={},
        )
        assert tracer.records[-1]["toggled"] is False
