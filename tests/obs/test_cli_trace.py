"""End-to-end CLI tests: record a trace, read it back, validate it."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs import read_jsonl, require_valid_stream

REPO = Path(__file__).resolve().parents[2]


@pytest.mark.slow
class TestTraceRecord:
    def test_record_run_validates(self, tmp_path, capsys):
        out = tmp_path / "run.jsonl"
        code = main([
            "trace", "record", "run", "--out", str(out),
            "--rate", "6000", "--measure-ms", "30", "--warmup-ms", "10",
        ])
        assert code == 0
        records = read_jsonl(out)
        require_valid_stream(records)
        assert records[0]["type"] == "trace.header"
        types = {record["type"] for record in records}
        assert "queue.sample" in types
        assert "metrics.snapshot" in types
        stdout = capsys.readouterr().out
        assert "trace written to" in stdout

    def test_record_toggler_has_decisions(self, tmp_path, capsys):
        out = tmp_path / "toggler.jsonl"
        code = main([
            "trace", "record", "toggler", "--out", str(out),
            "--rate", "8000", "--measure-ms", "40",
        ])
        assert code == 0
        records = read_jsonl(out)
        require_valid_stream(records)
        decisions = [r for r in records if r["type"] == "toggler.decision"]
        assert decisions
        first = decisions[0]
        assert first["tick"] == 1
        assert first["phase"] in {
            "measure", "settle", "loss-freeze", "freeze-hold"
        }
        assert set(first["ewma"]) == {"nagle_off", "nagle_on"}


@pytest.mark.slow
class TestTraceReadback:
    @pytest.fixture(scope="class")
    def trace_path(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("trace") / "run.jsonl"
        assert main([
            "trace", "record", "run", "--out", str(out),
            "--rate", "6000", "--measure-ms", "30", "--warmup-ms", "10",
        ]) == 0
        return out

    def test_summarize(self, trace_path, capsys):
        capsys.readouterr()
        assert main(["trace", "summarize", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "records:" in out
        assert "queue.sample" in out

    def test_filter_emits_json_lines(self, trace_path, capsys):
        capsys.readouterr()
        assert main([
            "trace", "filter", str(trace_path),
            "--type", "queue.sample", "--limit", "3",
        ]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert 0 < len(lines) <= 3
        for line in lines:
            assert json.loads(line)["type"] == "queue.sample"

    def test_validate_accepts_good_stream(self, trace_path, capsys):
        capsys.readouterr()
        assert main(["trace", "validate", str(trace_path)]) == 0

    def test_validate_rejects_bad_stream(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text(
            '{"t": 0, "type": "log.message", "src": "log", "message": "x"}\n'
        )
        assert main(["trace", "validate", str(bad)]) == 1


@pytest.mark.slow
class TestRunFlags:
    def test_run_trace_and_metrics(self, tmp_path, capsys):
        trace = tmp_path / "run.jsonl"
        metrics = tmp_path / "metrics.json"
        code = main([
            "run", "--rate", "6000", "--measure-ms", "30",
            "--warmup-ms", "10",
            "--trace", str(trace), "--metrics", str(metrics),
        ])
        assert code == 0
        require_valid_stream(read_jsonl(trace))
        snapshot = json.loads(metrics.read_text())
        assert snapshot["schema"] == "repro-metrics-v1"
        assert snapshot["counters"]["exchange.client.states_sent"] > 0

    def test_faults_quiet_silences_progress(self):
        # --quiet must remove all stderr progress; stdout (the table)
        # must be byte-identical either way.
        base = [
            sys.executable, "-m", "repro", "faults",
            "--intensities", "0",
            "--rate", "6000", "--measure-ms", "30",
        ]
        env = {**os.environ, "PYTHONPATH": "src"}
        loud = subprocess.run(
            base, capture_output=True, text=True, cwd=REPO, env=env,
        )
        quiet = subprocess.run(
            base + ["--quiet"], capture_output=True, text=True,
            cwd=REPO, env=env,
        )
        assert loud.returncode == 0 and quiet.returncode == 0
        assert "chaos" in loud.stderr
        assert quiet.stderr == ""
        assert loud.stdout == quiet.stdout


class TestDocsConsistency:
    def test_check_docs_passes(self):
        result = subprocess.run(
            [sys.executable, str(REPO / "tools" / "check_docs.py")],
            capture_output=True, text=True, cwd=REPO,
            env={**os.environ, "PYTHONPATH": "src", "COLUMNS": "80"},
        )
        assert result.returncode == 0, result.stdout + result.stderr
