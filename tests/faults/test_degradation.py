"""Graceful-degradation tests: the estimator, exchange and toggler must
absorb mangled inputs without emitting nonsense or oscillating."""

from __future__ import annotations

from dataclasses import replace
from types import SimpleNamespace

import pytest

from repro.core.estimator import E2EEstimator
from repro.core.exchange import (
    OPTION_E2E,
    MetadataExchange,
    PeerSnapshots,
    WirePeerState,
    WireQueueState,
)
from repro.core.policy import LatencyFirstPolicy, PerfSample
from repro.core.qstate import QueueSnapshot
from repro.core.toggler import NagleToggler, TogglerConfig
from repro.experiments.faults import min_toggle_gap_ticks
from repro.faults import named_plan
from repro.loadgen.lancet import BenchConfig, build_testbed, run_benchmark
from repro.sim.rng import RngRegistry
from repro.units import msecs, usecs


def wire_state(time32, total32=0, integral32=0):
    return WirePeerState(
        unacked=WireQueueState(time32, total32, integral32),
        unread=WireQueueState(time32, total32, integral32),
        ackdelay=WireQueueState(time32, total32, integral32),
    )


def make_exchange(sim, **kwargs):
    return MetadataExchange(sim, SimpleNamespace(), period_ns=1000, **kwargs)


class TestExchangeHardening:
    def test_same_microsecond_movement_is_plausible(self, sim):
        exchange = make_exchange(sim)
        exchange.on_receive({OPTION_E2E: wire_state(100, 50, 10)})
        # Wire time has us resolution: two states within the same us
        # legitimately show zero time progress and a little movement.
        exchange.on_receive({OPTION_E2E: wire_state(100, 55, 12)})
        assert exchange.states_rejected == 0
        assert exchange.remote_cur.unacked.total == 55

    def test_zero_dt_counter_jump_rejected(self, sim):
        exchange = make_exchange(sim)
        exchange.on_receive({OPTION_E2E: wire_state(100, 50, 10)})
        corrupt = wire_state(100, 50 + (1 << 25), 10)
        exchange.on_receive({OPTION_E2E: corrupt})
        assert exchange.states_rejected == 1
        assert exchange.remote_cur.unacked.total == 50  # baseline kept
        # With modular unwrapping a replayed *older* counter also
        # surfaces as a huge forward jump and dies the same way.
        exchange.on_receive({OPTION_E2E: wire_state(100, 49, 10)})
        assert exchange.states_rejected == 2

    def test_zero_dt_integral_jump_rejected(self, sim):
        exchange = make_exchange(sim)
        exchange.on_receive({OPTION_E2E: wire_state(100, 50, 10)})
        exchange.on_receive({OPTION_E2E: wire_state(100, 50, 10 + (1 << 25))})
        assert exchange.states_rejected == 1

    def test_gap_check_bounds_time_progress(self, sim):
        exchange = make_exchange(sim, max_gap_ns=msecs(1))
        exchange.on_receive({OPTION_E2E: wire_state(100)})
        # 2000 us of wire-time progress > the 1 ms budget.
        exchange.on_receive({OPTION_E2E: wire_state(2100)})
        assert exchange.states_rejected == 1
        # A plausible successor is still accepted against the kept
        # baseline.
        exchange.on_receive({OPTION_E2E: wire_state(600, 5, 1)})
        assert exchange.states_rejected == 1
        assert exchange.remote_prev is not None

    def test_rejection_keeps_last_received_time(self, sim):
        exchange = make_exchange(sim)
        exchange.on_receive({OPTION_E2E: wire_state(100, 50, 10)})
        before = exchange.last_received_ns
        sim.call_at(usecs(50), lambda: exchange.on_receive(
            {OPTION_E2E: wire_state(100, 50 + (1 << 25), 10)}))
        sim.run()
        assert exchange.last_received_ns == before
        assert exchange.staleness_ns() == sim.now - before

    def test_persistent_implausibility_rebaselines(self, sim):
        exchange = make_exchange(sim, max_gap_ns=msecs(1))
        exchange.on_receive({OPTION_E2E: wire_state(100)})
        # Three consecutive rejections mean *our* baseline is the wrong
        # side; the third incoming state is adopted fresh.
        for time32 in (50_100, 50_200, 50_300):
            exchange.on_receive({OPTION_E2E: wire_state(time32, 9, 3)})
        assert exchange.states_rejected == 3
        assert exchange.rebaselines == 1
        assert exchange.remote_prev is None  # no interval spans the jump
        assert exchange.remote_cur is not None
        exchange.on_receive({OPTION_E2E: wire_state(50_400, 12, 4)})
        assert exchange.states_rejected == 3
        assert exchange.remote_prev is not None


class _StubQueue:
    """Replays a prepared list of snapshots."""

    def __init__(self, snapshots):
        self._snapshots = list(snapshots)

    def snapshot(self):
        return self._snapshots.pop(0)


def stub_side(unacked, unread, ackdelay):
    return SimpleNamespace(
        qs_unacked=_StubQueue(unacked),
        qs_unread=_StubQueue(unread),
        qs_ackdelay=_StubQueue(ackdelay),
    )


def snap(time, total, integral):
    return QueueSnapshot(time=time, total=total, integral=integral)


class TestEstimatorHardening:
    def test_negative_estimate_clamped_to_zero(self):
        # Local unacked delay 10 ns, remote ackdelay 1000 ns: the raw
        # combination is -990 ns, which is never meaningful.
        local = stub_side(
            unacked=[snap(0, 0, 0), snap(1000, 100, 1000)],
            unread=[snap(0, 0, 0), snap(1000, 100, 0)],
            ackdelay=[snap(0, 0, 0), snap(1000, 0, 0)],
        )
        remote = stub_side(
            unacked=[snap(0, 0, 0), snap(1000, 100, 0)],
            unread=[snap(0, 0, 0), snap(1000, 100, 0)],
            ackdelay=[snap(0, 0, 0), snap(1000, 100, 100_000)],
        )
        estimator = E2EEstimator(local, remote=remote)
        assert estimator.sample() is None  # baseline
        sample = estimator.sample()
        assert sample.latency_ns == 0.0
        assert estimator.negative_clamps == 1

    def test_absurd_estimate_clamped_to_ceiling(self):
        local = stub_side(
            unacked=[snap(0, 0, 0), snap(1000, 100, 1_000_000)],
            unread=[snap(0, 0, 0), snap(1000, 100, 0)],
            ackdelay=[snap(0, 0, 0), snap(1000, 0, 0)],
        )
        remote = stub_side(
            unacked=[snap(0, 0, 0), snap(1000, 100, 0)],
            unread=[snap(0, 0, 0), snap(1000, 100, 0)],
            ackdelay=[snap(0, 0, 0), snap(1000, 100, 0)],
        )
        estimator = E2EEstimator(local, remote=remote, max_latency_ns=500.0)
        estimator.sample()
        sample = estimator.sample()
        assert sample.latency_ns == 500.0
        assert estimator.absurd_clamps == 1

    def _local_stub(self):
        return stub_side(
            unacked=[snap(0, 0, 0), snap(1000, 100, 1000)],
            unread=[snap(0, 0, 0), snap(1000, 100, 0)],
            ackdelay=[snap(0, 0, 0), snap(1000, 0, 0)],
        )

    def _peer(self, time, total=10, integral=0, unread_total=None):
        unread = snap(
            time, total if unread_total is None else unread_total, integral,
        )
        return PeerSnapshots(
            unacked=snap(time, total, integral),
            unread=unread,
            ackdelay=snap(time, total, integral),
        )

    def test_stale_remote_view_is_discarded(self):
        fake = SimpleNamespace(
            remote_prev=None, remote_cur=None, staleness_ns=lambda: 5_000,
        )
        estimator = E2EEstimator(
            self._local_stub(), exchange=fake, max_staleness_ns=100,
        )
        assert estimator.sample() is None
        fake.remote_prev = self._peer(0)
        fake.remote_cur = self._peer(1000, total=20)
        sample = estimator.sample()
        assert sample.latency_ns is None  # local-only, not a stale guess
        assert estimator.stale_rejections == 1

    def test_nonmonotonic_remote_interval_is_discarded(self):
        fake = SimpleNamespace(
            remote_prev=None, remote_cur=None, staleness_ns=lambda: 0,
        )
        estimator = E2EEstimator(self._local_stub(), exchange=fake)
        assert estimator.sample() is None
        fake.remote_prev = self._peer(0, total=10)
        fake.remote_cur = self._peer(1000, total=20, unread_total=5)
        sample = estimator.sample()
        assert sample.latency_ns is None
        assert estimator.nonmonotonic_rejections == 1


def run_toggler(sim, sample_fn, config, loss_signal_fn=None, ticks=10):
    toggler = NagleToggler(
        sim,
        sample_fn=sample_fn,
        apply_fn=lambda mode: None,
        policy=LatencyFirstPolicy(),
        rng=RngRegistry(seed=7).stream("toggler"),
        config=config,
        initial_mode=False,
        loss_signal_fn=loss_signal_fn,
    )
    toggler.start()
    sim.run(until=config.tick_ns * ticks + 1)
    return toggler


class TestTogglerFreezes:
    def test_freeze_window_bounds_oscillation(self, sim):
        config = TogglerConfig(
            tick_ns=msecs(1), epsilon=0.0, min_samples=1,
            settle_ticks=0, freeze_ticks=5,
        )
        count = [0]

        def rising_latency():
            # Each tick the running mode looks worse than everything
            # before it — an estimator gone unstable.  Without the
            # freeze window, a greedy controller would flip every tick.
            count[0] += 1
            return PerfSample(
                latency_ns=100.0 * count[0], throughput_per_sec=1000.0,
            )

        toggler = run_toggler(sim, rising_latency, config, ticks=60)
        assert toggler.toggles >= 3
        assert toggler.freeze_holds > 0
        assert min_toggle_gap_ticks(toggler) >= config.freeze_ticks

    def test_loss_episode_freezes_mode_and_ewmas(self, sim):
        config = TogglerConfig(
            tick_ns=msecs(1), epsilon=0.0, min_samples=1,
            settle_ticks=0, loss_freeze_ticks=3,
        )
        tick = [0]

        def signal():
            tick[0] += 1
            return tick[0] == 5  # one loss burst at the fifth tick

        toggler = run_toggler(
            sim,
            lambda: PerfSample(latency_ns=100.0, throughput_per_sec=1000.0),
            config,
            loss_signal_fn=signal,
            ticks=10,
        )
        assert toggler.loss_episodes == 1
        assert toggler.frozen_ticks == 3
        # Frozen ticks fold nothing into the EWMAs...
        folded = sum(
            toggler._stats[mode].samples for mode in (False, True)
        )
        assert folded == len(toggler.history) - toggler.frozen_ticks
        # ...and hold the mode for the whole episode.
        episode = [record.mode for record in toggler.history[3:7]]
        assert len(set(episode)) == 1


class TestZeroCostWhenOff:
    def test_no_plan_builds_no_fault_machinery(self):
        bed = build_testbed(BenchConfig(rate_per_sec=1000.0))
        assert bed.faults is None
        assert bed.client_host.nic._egress._fault_hook is None
        assert bed.server_host.nic._egress._fault_hook is None
        assert bed.client_host.nic._rx_fault_hook is None
        assert bed.client_exchange.fault_hook is None
        assert bed.client_exchange.max_gap_ns is None
        assert not any(
            name.startswith("faults.") for name in bed.rng._streams
        )

    def test_plan_builds_the_full_stack(self):
        config = BenchConfig(
            rate_per_sec=1000.0, fault_plan=named_plan("mixed"),
        )
        bed = build_testbed(config)
        assert bed.faults is not None
        assert bed.client_host.nic._egress._fault_hook is not None
        assert bed.client_exchange.fault_hook is not None
        assert bed.client_exchange.max_gap_ns is not None


@pytest.mark.slow
class TestChaosDeterminism:
    def test_same_seed_and_plan_replays_exactly(self):
        config = BenchConfig(
            rate_per_sec=8_000.0,
            warmup_ns=msecs(10),
            measure_ns=msecs(30),
            seed=5,
            min_rto_ns=msecs(5),
            fault_plan=named_plan("mixed").scaled(0.5),
        )

        def one_run():
            holder = {}
            result = run_benchmark(
                config, tweak=lambda bed: holder.update(bed=bed),
            )
            return (
                result.achieved_rate,
                result.latency.mean_ns,
                result.latency.p99_ns,
                holder["bed"].faults.summary(),
            )

        assert one_run() == one_run()
