"""Tests for fault plans: validation, scaling, presets."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import FaultError
from repro.faults import (
    FAULT_PLANS,
    DelayJitter,
    ExchangeFaults,
    FaultPlan,
    GilbertElliott,
    LinkFlap,
    NicFaults,
    ReceiverStall,
    named_plan,
)


class TestComponentValidation:
    def test_gilbert_elliott_probability_ranges(self):
        with pytest.raises(FaultError):
            GilbertElliott(p_good_bad=1.5).validate()
        with pytest.raises(FaultError):
            GilbertElliott(loss_bad=-0.1).validate()
        GilbertElliott().validate()

    def test_jitter_rejects_negative(self):
        with pytest.raises(FaultError):
            DelayJitter(jitter_ns=-1).validate()
        with pytest.raises(FaultError):
            DelayJitter(probability=2.0).validate()

    def test_flap_must_fit_period(self):
        with pytest.raises(FaultError):
            LinkFlap(period_ns=0).validate()
        with pytest.raises(FaultError):
            LinkFlap(period_ns=10, down_ns=11).validate()
        with pytest.raises(FaultError):
            LinkFlap(start_ns=-1).validate()

    def test_stall_must_fit_period(self):
        with pytest.raises(FaultError):
            ReceiverStall(period_ns=10, stall_ns=11).validate()
        ReceiverStall(period_ns=10, stall_ns=10).validate()

    def test_nic_and_exchange_probabilities(self):
        with pytest.raises(FaultError):
            NicFaults(rx_drop_probability=1.1).validate()
        with pytest.raises(FaultError):
            NicFaults(rx_defer_ns=-5).validate()
        with pytest.raises(FaultError):
            ExchangeFaults(corrupt_probability=-0.2).validate()

    def test_plan_rejects_unknown_direction(self):
        with pytest.raises(FaultError):
            FaultPlan(directions=("sideways",)).validate()

    def test_plan_validates_components(self):
        with pytest.raises(FaultError):
            FaultPlan(loss=GilbertElliott(p_good_bad=2.0)).validate()


class TestScaling:
    def test_probabilities_cap_at_one(self):
        scaled = GilbertElliott(loss_bad=0.6).scaled(5.0)
        assert scaled.loss_bad == 1.0
        scaled.validate()

    def test_recovery_probability_not_scaled(self):
        # Scaling intensity must not make bursts *shorter*.
        scaled = GilbertElliott(p_bad_good=0.25).scaled(10.0)
        assert scaled.p_bad_good == 0.25

    def test_durations_cap_at_period(self):
        flap = LinkFlap(period_ns=100, down_ns=60).scaled(3.0)
        assert flap.down_ns == 100
        flap.validate()

    def test_zero_factor_is_noop(self):
        plan = FAULT_PLANS["mixed"].scaled(0.0)
        assert plan.is_noop
        assert plan.name == "mixed"

    def test_negative_factor_rejected(self):
        with pytest.raises(FaultError):
            FAULT_PLANS["mixed"].scaled(-1.0)

    def test_scaling_preserves_structure(self):
        plan = FAULT_PLANS["mixed"].scaled(0.5)
        assert plan.loss is not None
        assert plan.jitter is not None
        assert plan.exchange is not None
        plan.validate()


class TestPresets:
    def test_all_presets_valid_and_active(self):
        for name, plan in FAULT_PLANS.items():
            plan.validate()
            assert not plan.is_noop, name
            assert plan.name == name

    def test_named_plan_lookup(self):
        assert named_plan("bursty-loss") is FAULT_PLANS["bursty-loss"]

    def test_unknown_name_rejected(self):
        with pytest.raises(FaultError):
            named_plan("gremlins")

    def test_plans_are_picklable(self):
        # Plans ride inside BenchConfig through the process-pool runner.
        for plan in FAULT_PLANS.values():
            clone = pickle.loads(pickle.dumps(plan))
            assert clone == plan

    def test_empty_plan_is_noop(self):
        assert FaultPlan().is_noop
        assert not FaultPlan(jitter=DelayJitter()).is_noop
