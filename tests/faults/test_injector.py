"""Tests for the fault injector's per-layer hooks."""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.core.exchange import OPTION_E2E, WirePeerState, WireQueueState
from repro.errors import FaultError
from repro.faults import (
    DelayJitter,
    ExchangeFaults,
    FaultInjector,
    FaultPlan,
    GilbertElliott,
    LinkFlap,
    NicFaults,
    ReceiverStall,
)
from repro.faults.injector import ExchangeFaultHook
from repro.net.link import Link
from repro.net.nic import Nic, NicConfig
from repro.net.packet import Packet
from repro.sim.rng import RngRegistry
from repro.units import usecs

GBPS = 1_000_000_000.0


def make_faulty_link(sim, plan, seed=7, direction="forward"):
    """A real link with the plan's wire faults attached; returns
    (link, received-index list, injector)."""
    link = Link(sim, bandwidth_bps=GBPS, propagation_delay_ns=1_000)
    received: list[int] = []
    link.attach_receiver(lambda packet: received.append(packet.payload_bytes))
    injector = FaultInjector(sim, plan, RngRegistry(seed=seed))
    injector.attach_link(link, direction)
    return link, received, injector


def send_indexed(link, count):
    """Send ``count`` packets whose payload size encodes the send order."""
    for index in range(count):
        link.send(Packet(src="a", dst="b", payload_bytes=index + 1))


class TestInjectorConstruction:
    def test_refuses_noop_plan(self, sim):
        with pytest.raises(FaultError):
            FaultInjector(sim, FaultPlan(), RngRegistry(seed=1))

    def test_validates_plan(self, sim):
        plan = FaultPlan(loss=GilbertElliott(p_good_bad=2.0))
        with pytest.raises(FaultError):
            FaultInjector(sim, plan, RngRegistry(seed=1))


class TestLinkFaults:
    def test_certain_bursty_loss_drops_everything(self, sim):
        # p_good_bad=1 flips to bad on the first packet; p_bad_good=0
        # never recovers; loss_bad=1 then eats every packet.
        plan = FaultPlan(loss=GilbertElliott(
            p_good_bad=1.0, p_bad_good=0.0, loss_good=0.0, loss_bad=1.0,
        ))
        link, received, injector = make_faulty_link(sim, plan)
        send_indexed(link, 20)
        sim.run()
        assert received == []
        assert link.fault_drops == 20
        assert link.packets_dropped == 20
        summary = injector.summary()["link"]["forward"]
        assert summary["loss_drops"] == 20
        assert summary["blackout_drops"] == 0

    def test_loss_pattern_is_seed_deterministic(self, make_sim):
        plan = FaultPlan(loss=GilbertElliott(
            p_good_bad=0.3, p_bad_good=0.3, loss_good=0.05, loss_bad=0.9,
        ))

        def survivors(seed):
            sim = make_sim()
            link, received, _ = make_faulty_link(sim, plan, seed=seed)
            send_indexed(link, 200)
            sim.run()
            return received

        first, second = survivors(7), survivors(7)
        assert first == second
        assert 0 < len(first) < 200
        assert survivors(8) != first

    def test_jitter_reorders_packets(self, sim):
        plan = FaultPlan(jitter=DelayJitter(
            jitter_ns=usecs(100), probability=1.0,
        ))
        link, received, injector = make_faulty_link(sim, plan)
        send_indexed(link, 10)
        sim.run()
        assert sorted(received) == list(range(1, 11))  # nothing lost
        assert received != sorted(received)  # but reordered
        assert injector.summary()["link"]["forward"]["jittered"] == 10

    def test_blackout_window_drops_inside_only(self, sim):
        plan = FaultPlan(flap=LinkFlap(
            period_ns=usecs(100), down_ns=usecs(50), start_ns=0,
        ))
        link, received, injector = make_faulty_link(sim, plan)
        # Serialization of these tiny packets takes <1 us, so the
        # verdict lands just after the send time: 10 us is deep inside
        # the 50 us blackout, 60 us is deep inside the up window.
        sim.call_at(usecs(10), lambda: link.send(
            Packet(src="a", dst="b", payload_bytes=1)))
        sim.call_at(usecs(60), lambda: link.send(
            Packet(src="a", dst="b", payload_bytes=2)))
        sim.run()
        assert received == [2]
        assert injector.summary()["link"]["forward"]["blackout_drops"] == 1

    def test_direction_not_in_plan_is_untouched(self, sim):
        plan = FaultPlan(
            loss=GilbertElliott(loss_bad=1.0), directions=("forward",),
        )
        link, received, injector = make_faulty_link(
            sim, plan, direction="backward",
        )
        assert link._fault_hook is None
        assert "backward" not in injector.link_hooks
        send_indexed(link, 5)
        sim.run()
        assert sorted(received) == [1, 2, 3, 4, 5]


class TestNicFaults:
    def make_nic(self, sim, spec, seed=3):
        nic = Nic(sim, NicConfig())
        arrivals: list[tuple[int, int]] = []  # (time, payload)

        def handler(packets):
            arrivals.extend((sim.now, p.payload_bytes) for p in packets)

        nic.attach_rx_handler(handler)
        injector = FaultInjector(
            sim, FaultPlan(nic=spec), RngRegistry(seed=seed),
        )
        injector.attach_nic(nic, "forward")
        return nic, arrivals, injector

    def test_certain_overrun_drops_all(self, sim):
        nic, arrivals, injector = self.make_nic(
            sim, NicFaults(rx_drop_probability=1.0),
        )
        for index in range(8):
            nic.receive(Packet(src="a", dst="b", payload_bytes=index + 1))
        sim.run()
        assert arrivals == []
        assert nic.rx_fault_drops == 8
        assert injector.summary()["nic"]["forward"]["drops"] == 8

    def test_deferred_ingress_arrives_late(self, sim):
        nic, arrivals, injector = self.make_nic(
            sim, NicFaults(rx_defer_ns=usecs(20), rx_defer_probability=1.0),
        )
        nic.receive(Packet(src="a", dst="b", payload_bytes=1))
        sim.run()
        assert [payload for _, payload in arrivals] == [1]
        assert all(when > 0 for when, _ in arrivals)
        assert injector.summary()["nic"]["forward"]["deferred"] == 1


def peer_state(value: int) -> WirePeerState:
    queue = WireQueueState(time32=value, total32=value, integral32=value)
    return WirePeerState(
        unacked=queue,
        unread=WireQueueState(value, value, value),
        ackdelay=WireQueueState(value, value, value),
    )


def states_equal(left: WirePeerState, right: WirePeerState) -> bool:
    return all(
        getattr(left, queue) == getattr(right, queue)
        for queue in ("unacked", "unread", "ackdelay")
    )


def make_exchange_hook(spec, seed=3):
    plan = FaultPlan(exchange=spec)
    return ExchangeFaultHook(plan, RngRegistry(seed=seed).stream("x"))


class TestExchangeFaults:
    def test_certain_drop_strips_the_option(self):
        hook = make_exchange_hook(ExchangeFaults(drop_probability=1.0))
        assert hook({OPTION_E2E: peer_state(1)}) is None
        rewritten = hook({OPTION_E2E: peer_state(2), "other": "keep"})
        assert rewritten == {"other": "keep"}
        assert hook.dropped == 2

    def test_stale_replays_an_earlier_state(self):
        hook = make_exchange_hook(ExchangeFaults(stale_probability=1.0))
        first = peer_state(1)
        # No earlier state exists yet, so the first passes untouched
        # (and is remembered).
        assert hook({OPTION_E2E: first})[OPTION_E2E] is first
        rewritten = hook({OPTION_E2E: peer_state(2)})
        assert rewritten[OPTION_E2E] is first
        assert hook.staled == 1

    def test_corruption_mangles_without_mutating(self):
        hook = make_exchange_hook(ExchangeFaults(corrupt_probability=1.0))
        original = peer_state(5)
        options = {OPTION_E2E: original}
        rewritten = hook(options)
        assert options[OPTION_E2E] is original  # incoming dict untouched
        assert not states_equal(rewritten[OPTION_E2E], original)
        assert hook.corrupted == 1

    def test_optionless_segments_pass_through(self):
        hook = make_exchange_hook(ExchangeFaults(drop_probability=1.0))
        options = {"other": "keep"}
        assert hook(options) is options
        assert hook.dropped == 0

    def test_corruption_is_deterministic(self):
        mangle = lambda seed: make_exchange_hook(
            ExchangeFaults(corrupt_probability=1.0), seed=seed,
        )({OPTION_E2E: peer_state(5)})[OPTION_E2E]
        assert states_equal(mangle(3), mangle(3))
        assert not states_equal(mangle(3), mangle(4))


class TestReceiverStall:
    def test_stall_windows_follow_the_schedule(self, sim):
        plan = FaultPlan(stall=ReceiverStall(
            period_ns=usecs(100), stall_ns=usecs(40), start_ns=0,
        ))
        injector = FaultInjector(sim, plan, RngRegistry(seed=1))
        calls: list[tuple[int, bool]] = []
        socket = SimpleNamespace(
            set_read_stall=lambda stalled: calls.append((sim.now, stalled)),
        )
        injector.attach_receiver(socket)
        sim.run(until=usecs(250))
        assert calls == [
            (0, True), (usecs(40), False),
            (usecs(100), True), (usecs(140), False),
            (usecs(200), True), (usecs(240), False),
        ]
        assert injector.summary()["stall_windows"] == 3

    def test_no_stall_component_is_a_noop(self, sim):
        plan = FaultPlan(jitter=DelayJitter())
        injector = FaultInjector(sim, plan, RngRegistry(seed=1))
        socket = SimpleNamespace(
            set_read_stall=lambda stalled: pytest.fail("must not be called"),
        )
        injector.attach_receiver(socket)
        sim.run(until=usecs(500))


class TestAttachSelectivity:
    def test_exchange_attach_without_component_is_noop(self, sim):
        plan = FaultPlan(jitter=DelayJitter())
        injector = FaultInjector(sim, plan, RngRegistry(seed=1))
        exchange = SimpleNamespace(fault_hook=None)
        injector.attach_exchange(exchange, "client.0")
        assert exchange.fault_hook is None
        assert injector.exchange_hooks == {}

    def test_link_attach_without_wire_faults_is_noop(self, sim):
        plan = FaultPlan(exchange=ExchangeFaults(drop_probability=0.5))
        link = Link(sim, bandwidth_bps=GBPS, propagation_delay_ns=1_000)
        link.attach_receiver(lambda packet: None)
        injector = FaultInjector(sim, plan, RngRegistry(seed=1))
        injector.attach_link(link, "forward")
        assert link._fault_hook is None
