"""Journal durability/replay semantics and atomic heartbeats."""

from __future__ import annotations

import json

import pytest

from repro.errors import ServiceError
from repro.service import (
    SERVICE_SCHEMA,
    ServiceJournal,
    read_heartbeat,
    validate_journal_record,
    write_heartbeat,
)


def _campaign_record(id_="a" * 16, status="queued", **overrides):
    record = {
        "kind": "campaign", "id": id_, "status": status,
        "spec": "spec.json", "name": "camp", "digest": "d" * 64,
        "detail": "",
    }
    record.update(overrides)
    return record


class TestJournal:
    def test_first_append_writes_the_header(self, tmp_path):
        journal = ServiceJournal(tmp_path / "journal.jsonl")
        journal.campaign("a" * 16, "queued", "s.json", "camp", "d" * 64)
        journal.close()
        lines = (tmp_path / "journal.jsonl").read_text().splitlines()
        assert json.loads(lines[0]) == {"schema": SERVICE_SCHEMA}
        assert json.loads(lines[1])["status"] == "queued"

    def test_reopen_appends_without_a_second_header(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        first = ServiceJournal(path)
        first.campaign("a" * 16, "queued", "s.json", "camp", "d" * 64)
        first.close()
        second = ServiceJournal(path)
        second.campaign("a" * 16, "running", "s.json", "camp", "d" * 64)
        second.close()
        headers = [
            line for line in path.read_text().splitlines()
            if "schema" in json.loads(line)
        ]
        assert len(headers) == 1

    def test_replay_keeps_the_last_record_per_id(self, tmp_path):
        journal = ServiceJournal(tmp_path / "journal.jsonl")
        journal.campaign("a" * 16, "queued", "s.json", "camp", "d" * 64)
        journal.campaign("a" * 16, "running", "s.json", "camp", "d" * 64)
        journal.campaign("b" * 16, "done", "t.json", "other", "e" * 64)
        state = journal.replay()
        journal.close()
        assert state["a" * 16]["status"] == "running"
        assert state["b" * 16]["status"] == "done"

    def test_torn_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = ServiceJournal(path)
        journal.campaign("a" * 16, "queued", "s.json", "camp", "d" * 64)
        journal.close()
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"kind":"campaign","id":"bbbb')  # no newline
        state = ServiceJournal(path).replay()
        assert list(state) == ["a" * 16]

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = ServiceJournal(path)
        journal.campaign("a" * 16, "queued", "s.json", "camp", "d" * 64)
        journal.close()
        text = path.read_text()
        path.write_text(text + "not json at all\n" + text.splitlines()[1] + "\n")
        with pytest.raises(ServiceError, match="corrupt journal"):
            ServiceJournal(path).load()

    def test_invalid_record_refused_at_append(self, tmp_path):
        journal = ServiceJournal(tmp_path / "journal.jsonl")
        with pytest.raises(ServiceError, match="invalid record"):
            journal.append({"kind": "campaign", "id": "x"})
        assert not (tmp_path / "journal.jsonl").exists()

    def test_missing_journal_is_empty(self, tmp_path):
        assert ServiceJournal(tmp_path / "absent.jsonl").load() == []

    def test_close_is_idempotent(self, tmp_path):
        journal = ServiceJournal(tmp_path / "journal.jsonl")
        journal.campaign("a" * 16, "queued", "s.json", "camp", "d" * 64)
        journal.close()
        journal.close()


class TestRecordValidation:
    def test_valid_record_passes(self):
        assert validate_journal_record(_campaign_record()) == []

    def test_header_passes(self):
        assert validate_journal_record({"schema": SERVICE_SCHEMA}) == []

    def test_wrong_header_schema_fails(self):
        assert validate_journal_record({"schema": "repro-service-v0"})

    def test_unknown_status_fails(self):
        assert validate_journal_record(_campaign_record(status="paused"))

    def test_missing_field_fails(self):
        record = _campaign_record()
        del record["digest"]
        assert validate_journal_record(record)

    def test_unknown_kind_fails(self):
        assert validate_journal_record({"kind": "mystery"})


class TestHeartbeat:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "heartbeat.json"
        write_heartbeat(path, pid=123, port=8080, seq=7,
                        campaigns={"done": 2})
        document = read_heartbeat(path)
        assert document["pid"] == 123
        assert document["port"] == 8080
        assert document["seq"] == 7
        assert document["campaigns"] == {"done": 2}
        assert document["schema"] == SERVICE_SCHEMA

    def test_rewrite_leaves_no_tmp_file(self, tmp_path):
        path = tmp_path / "heartbeat.json"
        for seq in range(3):
            write_heartbeat(path, pid=1, port=0, seq=seq, campaigns={})
        assert [p.name for p in tmp_path.iterdir()] == ["heartbeat.json"]
        assert read_heartbeat(path)["seq"] == 2

    def test_absent_or_garbage_reads_none(self, tmp_path):
        assert read_heartbeat(tmp_path / "absent.json") is None
        garbage = tmp_path / "garbage.json"
        garbage.write_text("{torn")
        assert read_heartbeat(garbage) is None
        wrong = tmp_path / "wrong.json"
        wrong.write_text(json.dumps({"schema": "other"}))
        assert read_heartbeat(wrong) is None
