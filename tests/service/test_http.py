"""The read-only HTTP status surface, exercised over real sockets."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.service import ReproService, ServiceConfig, campaign_id
from repro.campaign import load_spec

from tests.service.test_daemon import TINY_SPEC, _drop_spec


@pytest.fixture()
def live_service(tmp_path):
    """A ReproService draining its spool in a background thread."""
    spec_path = _drop_spec(tmp_path)
    service = ReproService(ServiceConfig(
        spool=str(tmp_path / "spool"),
        state_dir=str(tmp_path / "state"),
        workers=0,
        poll_s=0.05,
        quiet=True,
    ))
    thread = threading.Thread(target=service.serve_forever, daemon=True)
    thread.start()
    deadline = time.monotonic() + 30
    while service._http is None and time.monotonic() < deadline:
        time.sleep(0.01)
    assert service._http is not None, "HTTP server did not start"
    try:
        yield service, campaign_id(load_spec(spec_path))
    finally:
        service.request_stop()
        thread.join(timeout=30)


def _get(service, path):
    port = service._http.port
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=5
    ) as response:
        return response.status, json.loads(response.read())


def _wait_done(service, id_, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, status = _get(service, "/status")
        entries = {e["id"]: e for e in status["campaigns"]}
        if entries.get(id_, {}).get("status") == "done":
            return
        time.sleep(0.05)
    raise AssertionError("campaign never reached done")


class TestEndpoints:
    def test_healthz(self, live_service):
        service, _ = live_service
        status, document = _get(service, "/healthz")
        assert status == 200
        assert document["ok"] is True
        assert isinstance(document["seq"], int)

    def test_status_snapshot(self, live_service):
        service, id_ = live_service
        _wait_done(service, id_)
        _, document = _get(service, "/status")
        assert document["schema"] == "repro-service-v1"
        assert document["counts"] == {"done": 1}
        (entry,) = document["campaigns"]
        assert entry["id"] == id_
        assert entry["spec"] == "tiny.json"

    def test_campaign_detail_includes_the_report(self, live_service):
        service, id_ = live_service
        _wait_done(service, id_)
        status, document = _get(service, f"/campaigns/{id_}")
        assert status == 200
        assert document["report"]["schema"] == "repro-importance-v1"
        assert document["report"]["campaign"] == TINY_SPEC["name"]

    def test_campaign_findings_without_remediation(self, live_service):
        service, id_ = live_service
        _wait_done(service, id_)
        status, document = _get(service, f"/campaigns/{id_}/findings")
        assert status == 200
        assert document == {"id": id_, "remediation": None}

    def test_unknown_campaign_is_404(self, live_service):
        service, _ = live_service
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(service, "/campaigns/ffffffffffffffff")
        assert excinfo.value.code == 404

    def test_unknown_path_is_404(self, live_service):
        service, _ = live_service
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(service, "/nope")
        assert excinfo.value.code == 404

    def test_graceful_stop_drains(self, live_service):
        service, id_ = live_service
        _wait_done(service, id_)
        service.request_stop()
        deadline = time.monotonic() + 30
        while service._http is not None and time.monotonic() < deadline:
            time.sleep(0.01)
        assert service._http is None
