"""ReproService behavior: spool, journal replay, resume byte-identity."""

from __future__ import annotations

import json

import pytest

from repro.campaign import load_spec, run_spec
from repro.service import (
    ReproService,
    ServiceConfig,
    ServiceJournal,
    campaign_id,
    read_heartbeat,
)

TINY_SPEC = {
    "schema": "repro-campaign-v1",
    "name": "tiny",
    "scenario": "run",
    "base": {"measure_ms": 10, "warmup_ms": 5, "rate_per_sec": 5000.0},
    "components": [
        {"name": "nagle", "on": {"nagle": True}, "off": {"nagle": False}},
    ],
    "matrix": ["baseline", "all_on"],
    "metrics": ["latency_mean_ns"],
}


def _config(tmp_path, **overrides) -> ServiceConfig:
    options = {
        "spool": str(tmp_path / "spool"),
        "state_dir": str(tmp_path / "state"),
        "workers": 0,
        "poll_s": 0.05,
        "once": True,
        "quiet": True,
    }
    options.update(overrides)
    return ServiceConfig(**options)


def _drop_spec(tmp_path, name="tiny.json", document=None):
    spool = tmp_path / "spool"
    spool.mkdir(parents=True, exist_ok=True)
    path = spool / name
    path.write_text(json.dumps(document or TINY_SPEC))
    return path


class TestOnce:
    def test_processes_the_spool_and_exits_clean(self, tmp_path):
        spec_path = _drop_spec(tmp_path)
        service = ReproService(_config(tmp_path))
        assert service.serve_forever() == 0

        id_ = campaign_id(load_spec(spec_path))
        state = tmp_path / "state"
        report = state / "campaigns" / id_ / "report.json"
        assert report.exists()
        document = json.loads(report.read_text())
        assert document["schema"] == "repro-importance-v1"

        journal_state = ServiceJournal(state / "journal.jsonl").replay()
        assert journal_state[id_]["status"] == "done"
        heartbeat = read_heartbeat(state / "heartbeat.json")
        assert heartbeat["campaigns"] == {"done": 1}

    def test_report_matches_a_direct_run_byte_for_byte(self, tmp_path):
        spec_path = _drop_spec(tmp_path)
        service = ReproService(_config(tmp_path))
        service.serve_forever()
        id_ = campaign_id(load_spec(spec_path))
        served = (
            tmp_path / "state" / "campaigns" / id_ / "report.json"
        ).read_text()
        direct = run_spec(load_spec(spec_path), workers=0)
        assert served == direct.report.to_canonical()

    def test_same_spec_under_two_names_is_one_campaign(self, tmp_path):
        _drop_spec(tmp_path, "first.json")
        _drop_spec(tmp_path, "second.json")
        service = ReproService(_config(tmp_path))
        service.serve_forever()
        assert service.snapshot()["counts"] == {"done": 1}

    def test_broken_spec_is_journaled_failed_not_retried(self, tmp_path):
        spool = tmp_path / "spool"
        spool.mkdir(parents=True)
        (spool / "broken.json").write_text('{"schema": "wrong"}')
        service = ReproService(_config(tmp_path))
        assert service.serve_forever() == 0
        snapshot = service.snapshot()
        assert snapshot["counts"] == {"failed": 1}
        (entry,) = snapshot["campaigns"]
        assert entry["detail"]
        # A fresh scan must not re-queue the known-bad file.
        rescan = ReproService(_config(tmp_path))
        assert rescan.scan_spool() == 0

    def test_non_spec_files_are_ignored(self, tmp_path):
        spool = tmp_path / "spool"
        spool.mkdir(parents=True)
        (spool / "notes.txt").write_text("not a spec")
        service = ReproService(_config(tmp_path))
        assert service.serve_forever() == 0
        assert service.snapshot()["campaigns"] == []


class TestMeasureOverride:
    def test_override_changes_the_effective_spec_and_id(self, tmp_path):
        spec_path = _drop_spec(tmp_path)
        service = ReproService(_config(tmp_path, measure_ms=20))
        effective = service._load_spec(spec_path)
        assert effective.base["measure_ms"] == 20
        assert campaign_id(effective) != campaign_id(load_spec(spec_path))


class TestRestart:
    def test_running_campaign_is_requeued_and_finishes_identically(
        self, tmp_path
    ):
        spec_path = _drop_spec(tmp_path)
        spec = load_spec(spec_path)
        id_ = campaign_id(spec)
        reference = run_spec(spec, workers=0).report.to_canonical()

        # Simulate a service that died mid-campaign: the journal
        # acknowledged `running` but never `done`.
        state = tmp_path / "state"
        journal = ServiceJournal(state / "journal.jsonl")
        journal.campaign(id_, "queued", "tiny.json", spec.name, spec.digest())
        journal.campaign(id_, "running", "tiny.json", spec.name, spec.digest())
        journal.close()

        revived = ReproService(_config(tmp_path))
        with revived._lock:
            assert revived._campaigns[id_]["status"] == "queued"
        assert revived.serve_forever() == 0
        report = state / "campaigns" / id_ / "report.json"
        assert report.read_text() == reference

    def test_done_with_missing_report_is_requeued(self, tmp_path):
        spec_path = _drop_spec(tmp_path)
        first = ReproService(_config(tmp_path))
        first.serve_forever()
        id_ = campaign_id(load_spec(spec_path))
        report = tmp_path / "state" / "campaigns" / id_ / "report.json"
        original = report.read_text()
        report.unlink()

        revived = ReproService(_config(tmp_path))
        with revived._lock:
            assert revived._campaigns[id_]["status"] == "queued"
        revived.serve_forever()
        assert report.read_text() == original

    def test_done_campaign_is_not_rerun(self, tmp_path):
        _drop_spec(tmp_path)
        first = ReproService(_config(tmp_path))
        first.serve_forever()
        revived = ReproService(_config(tmp_path))
        assert revived._next_queued() is None


class TestRemediation:
    def test_remediate_emits_a_valid_remedy_report(self, tmp_path):
        import pathlib

        example = (
            pathlib.Path(__file__).resolve().parents[2]
            / "examples" / "remedy_playbooks.json"
        )
        spec_path = _drop_spec(tmp_path)
        service = ReproService(_config(
            tmp_path, remediate=True, playbooks=str(example),
        ))
        assert service.serve_forever() == 0
        id_ = campaign_id(load_spec(spec_path))
        remedy = tmp_path / "state" / "campaigns" / id_ / "remedy.json"
        document = json.loads(remedy.read_text())
        assert document["schema"] == "repro-remediation-v1"
        findings = service.campaign_findings(id_)
        assert findings["remediation"] == document

    def test_remediation_does_not_change_report_bytes(self, tmp_path):
        spec_path = _drop_spec(tmp_path)
        plain = ReproService(_config(tmp_path))
        plain.serve_forever()
        id_ = campaign_id(load_spec(spec_path))
        reference = (
            tmp_path / "state" / "campaigns" / id_ / "report.json"
        ).read_text()

        other = tmp_path / "other"
        _drop_spec(other)
        remediated = ReproService(_config(other, remediate=True))
        remediated.serve_forever()
        served = (
            other / "state" / "campaigns" / id_ / "report.json"
        ).read_text()
        assert served == reference


class TestConfigValidation:
    def test_bad_poll_rejected(self, tmp_path):
        from repro.errors import ServiceError

        with pytest.raises(ServiceError, match="poll"):
            ReproService(_config(tmp_path, poll_s=0))

    def test_bad_port_rejected(self, tmp_path):
        from repro.errors import ServiceError

        with pytest.raises(ServiceError, match="port"):
            ReproService(_config(tmp_path, port=70000))
