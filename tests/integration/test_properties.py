"""Property-based invariants across the substrate layers.

These complement the per-module suites with cross-layer properties:
whatever the message sizes, loss rates, Nagle settings or exchange
cadences, the stack must deliver every byte in order exactly once, the
queue-state counters must conserve, and the wire exchange must
reconstruct the sender's counters.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.exchange import MetadataExchange, OPTION_E2E, WirePeerState
from repro.core.qstate import QueueState
from repro.sim.loop import Simulator
from repro.sim.rng import RngRegistry
from tests.conftest import PairFactory, drain_reader

import pytest as _pytest

pytestmark = _pytest.mark.slow

SECOND = 10**9


class TestDeliveryProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        sizes=st.lists(st.integers(1, 40_000), min_size=1, max_size=10),
        nagle=st.booleans(),
        gro_window=st.sampled_from([0, 1_000, 3_000]),
    )
    def test_exactly_once_in_order_any_config(self, sizes, nagle, gro_window):
        from repro.net.nic import NicConfig

        sim = Simulator()
        factory = PairFactory(sim)
        _, _, a, b = factory.build(
            nagle=nagle,
            nic_config=NicConfig(gro_flush_ns=gro_window),
        )
        for index, size in enumerate(sizes):
            a.send(index, size)
        results = {}
        drain_reader(sim, b, sum(sizes), results)
        sim.run(until=10 * SECOND)
        assert results["messages"] == list(range(len(sizes)))
        # Counter conservation across all three paper queues.
        assert a.qs_unacked.total == sum(sizes)
        assert b.qs_unread.total == sum(sizes)
        assert b.qs_ackdelay.total == sum(sizes)
        assert a.qs_unacked.size == 0

    @settings(max_examples=8, deadline=None)
    @given(
        loss=st.floats(0.01, 0.15),
        seed=st.integers(0, 100),
        total=st.integers(10_000, 120_000),
    )
    def test_lossy_network_still_exactly_once(self, loss, seed, total):
        sim = Simulator()
        rng = RngRegistry(seed).stream("loss")
        factory = PairFactory(sim)
        _, _, a, b = factory.build(
            loss_probability=loss,
            loss_rng=rng,
            tcp_kwargs={"min_rto_ns": 2_000_000},
        )
        a.send("bulk", total)
        results = {}
        drain_reader(sim, b, total, results)
        sim.run(until=120 * SECOND)
        assert results["bytes"] == total
        assert b.rcv_nxt == total
        assert a.snd_una == total


class TestExchangeProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        deltas=st.lists(
            st.tuples(st.integers(0, 5_000), st.integers(0, 10_000_000)),
            min_size=2,
            max_size=30,
        )
    )
    def test_wire_roundtrip_tracks_queue_totals(self, deltas):
        """Snapshot -> 36-byte wire -> unwrap preserves total counts and
        times at wire resolution, for any activity pattern."""
        sim = Simulator()

        class Endpoint:
            def __init__(self):
                self.qs_unacked = QueueState(lambda: sim.now)
                self.qs_unread = QueueState(lambda: sim.now)
                self.qs_ackdelay = QueueState(lambda: sim.now)
                self.exchange = None

        sender = Endpoint()
        receiver = Endpoint()
        exchange = MetadataExchange(sim, receiver, period_ns=1)

        for items, dt in deltas:
            sim.call_after(dt, lambda: None)
            sim.run()
            sender.qs_unacked.track(items)
            sender.qs_unacked.track(-items)
            wire = WirePeerState.capture(sender, exchange.scale)
            decoded = WirePeerState.decode(wire.encode())
            exchange.on_receive({OPTION_E2E: decoded})

        unwrapped = exchange.remote_cur.unacked
        assert unwrapped.total == sender.qs_unacked.total
        # Time matches at the wire's microsecond resolution.
        assert abs(unwrapped.time - sim.now) < 1_000


class TestSeedDeterminism:
    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_full_run_bit_for_bit_reproducible(self, seed):
        from repro.loadgen.lancet import BenchConfig, run_benchmark
        from repro.units import msecs

        config = BenchConfig(
            rate_per_sec=12_000.0, seed=seed,
            warmup_ns=msecs(5), measure_ns=msecs(15),
        )
        first = run_benchmark(config)
        second = run_benchmark(config)
        assert first.latency.mean_ns == second.latency.mean_ns
        assert first.achieved_rate == second.achieved_rate
        assert first.estimate.latency_ns == second.estimate.latency_ns
