"""Tests for the standalone exchange carrier (quiet endpoints)."""

from __future__ import annotations

from repro.core.exchange import MetadataExchange
from repro.units import msecs

SECOND = 10**9


class TestExchangeCarrier:
    def test_idle_connection_shares_nothing_without_carrier(self, sim, pair_factory):
        _, _, a, b = pair_factory.build()
        MetadataExchange(sim, a, period_ns=msecs(1))
        exchange_b = MetadataExchange(sim, b, period_ns=msecs(1))
        sim.run(until=SECOND // 10)
        # No traffic at all: nothing was ever carried.
        assert exchange_b.states_received == 0

    def test_carrier_delivers_states_on_idle_connection(self, sim, pair_factory):
        _, _, a, b = pair_factory.build()
        exchange_a = MetadataExchange(sim, a, period_ns=msecs(5))
        exchange_b = MetadataExchange(sim, b, period_ns=msecs(5))
        exchange_a.start_carrier(deadline_ns=msecs(10))
        sim.run(until=SECOND // 10)
        assert exchange_a.carrier_acks_sent >= 5
        assert exchange_b.states_received >= 5

    def test_carrier_idle_when_traffic_carries_states(self, sim, pair_factory):
        from tests.conftest import drain_reader

        _, _, a, b = pair_factory.build()
        exchange_a = MetadataExchange(sim, a, period_ns=msecs(5))
        exchange_a.start_carrier(deadline_ns=msecs(10))
        results = {}
        drain_reader(sim, b, 100 * 1000, results)

        def sender():
            from repro.sim.process import Timeout

            for _ in range(100):
                a.send("m", 1000)
                yield Timeout(msecs(1))

        sim.spawn(sender())
        # Inspect only the window where traffic flows (1 send/ms); the
        # carrier must stay silent because segments carry the states.
        sim.run(until=msecs(100))
        assert exchange_a.carrier_acks_sent <= 2
        assert exchange_a.states_sent > 10
        # Once the sender stops, the carrier takes over.
        sim.run(until=msecs(200))
        assert exchange_a.carrier_acks_sent >= 3

    def test_stop_carrier(self, sim, pair_factory):
        _, _, a, b = pair_factory.build()
        exchange_a = MetadataExchange(sim, a, period_ns=msecs(5))
        exchange_a.start_carrier(deadline_ns=msecs(10))
        sim.run(until=msecs(25))
        sent = exchange_a.carrier_acks_sent
        exchange_a.stop_carrier()
        sim.run(until=SECOND // 10)
        assert exchange_a.carrier_acks_sent == sent

    def test_on_demand_triggers_carrier(self, sim, pair_factory):
        _, _, a, b = pair_factory.build()
        exchange_a = MetadataExchange(sim, a, period_ns=SECOND * 60)
        exchange_b = MetadataExchange(sim, b, period_ns=SECOND * 60)
        exchange_a.start_carrier(deadline_ns=msecs(2))
        sim.run(until=msecs(10))
        received_before = exchange_b.states_received
        exchange_a.request()
        sim.run(until=msecs(30))
        assert exchange_b.states_received > received_before
