"""Tests for the protocol trace taps (debug observability)."""

from __future__ import annotations

from tests.conftest import drain_reader

SECOND = 10**9


class TestTraceTaps:
    def test_disabled_by_default_records_nothing(self, sim, pair_factory):
        client, server, a, b = pair_factory.build()
        a.send("m", 5000)
        results = {}
        drain_reader(sim, b, 5000, results)
        sim.run(until=SECOND)
        assert len(client.trace) == 0
        assert len(server.trace) == 0

    def test_tx_rx_events_recorded_when_enabled(self, sim, pair_factory):
        client, server, a, b = pair_factory.build()
        client.trace.enabled = True
        server.trace.enabled = True
        a.send("m", 5000)
        results = {}
        drain_reader(sim, b, 5000, results)
        sim.run(until=SECOND)
        tx_events = list(client.trace.filter(event="tx"))
        rx_events = list(server.trace.filter(event="rx"))
        assert tx_events
        assert rx_events
        assert sum(e.detail["len"] for e in tx_events) == 5000
        assert sum(e.detail["len"] for e in rx_events) == 5000

    def test_batching_hold_traced(self, sim, pair_factory):
        client, _, a, b = pair_factory.build(nagle=True)
        client.trace.enabled = True
        a.send("m1", 500)
        a.send("m2", 400)  # held by Nagle
        holds = list(client.trace.filter(event="batching_hold"))
        assert holds
        assert holds[-1].detail == 400

    def test_window_probe_traced(self, sim, pair_factory):
        client, _, a, b = pair_factory.build(
            tcp_kwargs={"recv_buffer_bytes": 5_000, "min_rto_ns": 1_000_000}
        )
        client.trace.enabled = True
        a.send("big", 50_000)
        sim.run(until=SECOND)
        assert list(client.trace.filter(event="window_probe"))
