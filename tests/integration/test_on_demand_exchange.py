"""On-demand metadata exchange (§5) in a live run."""

from __future__ import annotations

import pytest

from repro.core.toggler import TogglerConfig
from repro.experiments.ablations import attach_toggler
from repro.loadgen.lancet import BenchConfig, run_benchmark
from repro.units import msecs, secs

import pytest as _pytest

pytestmark = _pytest.mark.slow


def config(**overrides) -> BenchConfig:
    defaults = dict(
        rate_per_sec=50_000.0,
        nagle=False,
        warmup_ns=msecs(20),
        measure_ns=msecs(200),
        # A deliberately useless periodic cadence: one exchange per
        # simulated minute.  Only on-demand requests can feed the
        # controller.
        exchange_period_ns=secs(60),
    )
    defaults.update(overrides)
    return BenchConfig(**defaults)


class TestOnDemandExchange:
    def test_periodic_only_starves_the_controller(self):
        holder = {}

        def tweak(bed):
            holder["bed"] = bed
            holder["toggler"] = attach_toggler(
                bed, config=TogglerConfig(tick_ns=msecs(16), settle_ticks=1,
                                          min_samples=2),
                on_demand_exchange=False,
            )

        run_benchmark(config(), tweak=tweak)
        # One initial exchange each way at most: no remote intervals.
        assert holder["bed"].client_exchange.states_received <= 1

    def test_on_demand_feeds_the_controller(self):
        holder = {}

        def tweak(bed):
            holder["bed"] = bed
            holder["toggler"] = attach_toggler(
                bed, config=TogglerConfig(tick_ns=msecs(16), settle_ticks=1,
                                          min_samples=2),
                on_demand_exchange=True,
            )

        result = run_benchmark(config(), tweak=tweak)
        bed = holder["bed"]
        toggler = holder["toggler"]
        # States flowed despite the useless period...
        assert bed.client_exchange.states_received > 5
        # ...and the controller found Nagle-on at this overload.
        assert toggler.mode is True
        static_off_mean = 5_000_000  # ~5 ms from the static sweeps
        assert result.latency.mean_ns < static_off_mean
