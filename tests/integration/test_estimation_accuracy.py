"""End-to-end estimation accuracy — the paper's central claim, tested.

These are the paper's §4 findings as assertions on short simulated runs:
the §3.2 byte-granularity estimate tracks measured latency on the
homogeneous workload, diverges on the mixed workload, and the hint-based
path stays accurate on both.
"""

from __future__ import annotations

import pytest

from repro.core.estimator import E2EEstimator, combine_estimates
from repro.loadgen.arrivals import Workload
from repro.loadgen.lancet import BenchConfig, run_benchmark
from repro.units import KIB, msecs

import pytest as _pytest

pytestmark = _pytest.mark.slow


def config(**overrides) -> BenchConfig:
    defaults = dict(
        rate_per_sec=30_000.0,
        workload=Workload(value_bytes=16 * KIB),
        warmup_ns=msecs(20),
        measure_ns=msecs(80),
    )
    defaults.update(overrides)
    return BenchConfig(**defaults)


class TestHomogeneousAccuracy:
    """Figure 4a regime: fixed-size requests and responses."""

    @pytest.mark.parametrize("nagle", [False, True])
    def test_estimate_within_half_of_measured(self, nagle):
        result = run_benchmark(config(nagle=nagle))
        measured = result.send_latency.mean_ns
        estimated = result.estimate.latency_ns
        assert estimated is not None
        assert 0.4 * measured < estimated < 1.3 * measured

    def test_estimate_tracks_load_growth(self):
        """Higher load -> more queueing -> both measured and estimated
        latency rise together, and the estimate converges toward the
        measured value as queueing dominates."""
        low = run_benchmark(config(rate_per_sec=10_000.0))
        high = run_benchmark(config(rate_per_sec=36_000.0))
        assert high.estimate.latency_ns > low.estimate.latency_ns
        low_error = abs(low.estimate.latency_ns - low.send_latency.mean_ns)
        high_ratio = high.estimate.latency_ns / high.send_latency.mean_ns
        assert high_ratio > 0.6
        assert high.send_latency.mean_ns > low.send_latency.mean_ns

    def test_estimated_throughput_matches_offered(self):
        result = run_benchmark(config(rate_per_sec=20_000.0))
        assert result.estimate_rps == pytest.approx(20_000, rel=0.1)


class TestMixedWorkloadDivergence:
    """Figure 4b regime: 5% GETs with 16 KiB responses."""

    def test_byte_estimate_diverges_hints_do_not(self):
        result = run_benchmark(
            config(workload=Workload(set_ratio=0.95, value_bytes=16 * KIB))
        )
        measured = result.send_latency.mean_ns
        byte_error = abs(result.estimate.latency_ns - measured) / measured
        hint_error = abs(result.hint_latency_ns - measured) / measured
        assert hint_error < 0.25
        assert hint_error < byte_error


class TestHintAccuracy:
    @pytest.mark.parametrize("set_ratio", [1.0, 0.95])
    def test_hint_latency_close_to_measured(self, set_ratio):
        result = run_benchmark(
            config(workload=Workload(set_ratio=set_ratio, value_bytes=16 * KIB))
        )
        assert result.hint_latency_ns == pytest.approx(
            result.send_latency.mean_ns, rel=0.25
        )

    def test_hint_throughput_matches_achieved(self):
        result = run_benchmark(config())
        assert result.hint_rps == pytest.approx(result.achieved_rate, rel=0.1)


class TestWireModeEstimator:
    """The metadata exchange path (not the offline oracle) also works."""

    def test_wire_estimates_flow_through_options(self):
        samples = []

        def tweak(bed):
            estimator = E2EEstimator(bed.client_sock, exchange=bed.client_exchange)

            def tick():
                sample = estimator.sample()
                if sample is not None and sample.defined:
                    samples.append(sample)
                bed.sim.call_after(msecs(10), tick)

            bed.sim.call_after(msecs(25), tick)

        result = run_benchmark(config(exchange_period_ns=msecs(5)), tweak=tweak)
        assert len(samples) >= 5
        mean_estimate = sum(s.latency_ns for s in samples) / len(samples)
        measured = result.send_latency.mean_ns
        assert 0.3 * measured < mean_estimate < 1.5 * measured

    def test_two_sided_combination(self):
        """Both endpoints estimate; the max is a sane hedge."""
        collected = {}

        def tweak(bed):
            client_est = E2EEstimator(bed.client_sock, exchange=bed.client_exchange)
            server_est = E2EEstimator(bed.server_sock, exchange=bed.server_exchange)
            values = []

            def tick():
                combined = combine_estimates(
                    client_est.sample(), server_est.sample()
                )
                if combined is not None:
                    values.append(combined)
                bed.sim.call_after(msecs(10), tick)

            bed.sim.call_after(msecs(25), tick)
            collected["values"] = values

        result = run_benchmark(config(), tweak=tweak)
        values = collected["values"]
        assert values
        mean_estimate = sum(values) / len(values)
        assert mean_estimate > 0
