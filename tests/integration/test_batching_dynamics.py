"""The Figure 4a dynamics, asserted at reduced scale.

Short runs (tens of ms simulated) at three operating points verify the
paper's qualitative claims: Nagle hurts at low load, rescues the system
past the no-batching knee, and the dynamic toggler lands on the right
mode at both extremes.
"""

from __future__ import annotations

import pytest

from repro.core.toggler import TogglerConfig
from repro.experiments.ablations import attach_toggler
from repro.loadgen.arrivals import Workload
from repro.loadgen.lancet import BenchConfig, run_benchmark
from repro.units import KIB, msecs, usecs

import pytest as _pytest

pytestmark = _pytest.mark.slow

LOW_RATE = 8_000.0
HIGH_RATE = 50_000.0  # past the Nagle-off knee (~38 kRPS), below the on knee


def config(rate, nagle, measure=msecs(80), **overrides) -> BenchConfig:
    defaults = dict(
        rate_per_sec=rate,
        nagle=nagle,
        workload=Workload(value_bytes=16 * KIB),
        warmup_ns=msecs(20),
        measure_ns=measure,
    )
    defaults.update(overrides)
    return BenchConfig(**defaults)


class TestNagleCrossover:
    def test_nagle_hurts_at_low_load(self):
        off = run_benchmark(config(LOW_RATE, nagle=False))
        on = run_benchmark(config(LOW_RATE, nagle=True))
        assert on.latency.mean_ns > 1.2 * off.latency.mean_ns

    def test_nagle_rescues_past_the_knee(self):
        off = run_benchmark(config(HIGH_RATE, nagle=False))
        on = run_benchmark(config(HIGH_RATE, nagle=True))
        assert off.latency.mean_ns > 3 * on.latency.mean_ns

    def test_off_knee_comes_from_server_net_core(self):
        off = run_benchmark(config(HIGH_RATE, nagle=False))
        assert off.server_net_util > 0.95

    def test_nagle_relieves_the_receive_path(self):
        off = run_benchmark(config(HIGH_RATE, nagle=False))
        on = run_benchmark(config(HIGH_RATE, nagle=True))
        assert on.server_net_util < off.server_net_util

    def test_slo_sustainable_range_extends(self):
        """Mini version of the 1.93x headline: the on-config still meets
        the 500us SLO at a rate where the off-config has blown through
        it."""
        slo = usecs(500)
        off = run_benchmark(config(HIGH_RATE, nagle=False))
        on = run_benchmark(config(HIGH_RATE, nagle=True))
        assert off.latency.mean_ns > slo
        assert on.latency.mean_ns < slo


class TestDynamicToggler:
    def _run_with_toggler(self, rate):
        holder = {}

        def tweak(bed):
            holder["toggler"] = attach_toggler(
                bed,
                config=TogglerConfig(tick_ns=msecs(4), epsilon=0.05,
                                     min_samples=2),
            )

        result = run_benchmark(
            config(rate, nagle=False, measure=msecs(160)), tweak=tweak
        )
        return result, holder["toggler"]

    def test_toggler_lands_on_off_at_low_load(self):
        result, toggler = self._run_with_toggler(LOW_RATE)
        assert toggler.mode is False

    def test_toggler_lands_on_on_at_high_load(self):
        result, toggler = self._run_with_toggler(HIGH_RATE)
        assert toggler.mode is True

    def test_toggler_beats_wrong_static_choice_at_high_load(self):
        result, _ = self._run_with_toggler(HIGH_RATE)
        static_off = run_benchmark(
            config(HIGH_RATE, nagle=False, measure=msecs(160))
        )
        assert result.latency.mean_ns < static_off.latency.mean_ns
