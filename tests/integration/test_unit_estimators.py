"""End-to-end estimation at message-unit granularity on live runs."""

from __future__ import annotations

import pytest

from repro.core.estimator import E2EEstimator
from repro.core.semantic import SyscallUnits, attach_units
from repro.loadgen.arrivals import Workload
from repro.loadgen.lancet import BenchConfig, run_benchmark
from repro.units import KIB, msecs

import pytest as _pytest

pytestmark = _pytest.mark.slow


def config(**overrides) -> BenchConfig:
    defaults = dict(
        rate_per_sec=15_000.0,
        nagle=True,
        workload=Workload(set_ratio=0.95, value_bytes=16 * KIB),
        warmup_ns=msecs(20),
        measure_ns=msecs(120),
    )
    defaults.update(overrides)
    return BenchConfig(**defaults)


class TestSyscallUnitEstimator:
    def test_syscall_units_beat_bytes_in_fig4b_regime(self):
        """In the heterogeneous + Nagle regime where byte estimates miss
        the batching delay, syscall-unit estimates (one send() = one
        message) recover it: each unit leaves the unacked queue only
        when its *last* byte — the Nagle-held tail — is acked."""
        holder: dict = {}

        def tweak(bed):
            units = attach_units(bed.client_sock, bed.server_sock, SyscallUnits)
            estimator = E2EEstimator(units[0], remote=units[1])
            samples = []

            def tick():
                sample = estimator.sample()
                if sample is not None and sample.defined:
                    samples.append(sample.latency_ns)
                bed.sim.call_after(msecs(20), tick)

            bed.sim.call_after(msecs(25), tick)
            holder["samples"] = samples

        result = run_benchmark(config(), tweak=tweak)
        measured = result.send_latency.mean_ns
        byte_estimate = result.estimate.latency_ns
        unit_samples = holder["samples"]
        assert unit_samples
        unit_estimate = sum(unit_samples) / len(unit_samples)

        byte_error = abs(byte_estimate - measured) / measured
        unit_error = abs(unit_estimate - measured) / measured
        assert byte_error > 0.35          # bytes miss the stall (Fig 4b)
        assert unit_error < byte_error    # units see it

    def test_unit_throughput_counts_messages(self):
        holder: dict = {}

        def tweak(bed):
            units = attach_units(bed.client_sock, bed.server_sock, SyscallUnits)
            holder["units"] = units

        result = run_benchmark(config(rate_per_sec=8_000.0), tweak=tweak)
        client_units = holder["units"][0]
        # One unit per request consumed end to end.
        assert client_units.qs_unacked.total == pytest.approx(
            result.latency.count, rel=0.25
        )
