"""Tests for wire packets."""

from __future__ import annotations

from repro.net.packet import ETHERNET_OVERHEAD, TCPIP_HEADER, Packet


class TestPacket:
    def test_wire_bytes_adds_overheads(self):
        packet = Packet(src="a", dst="b", payload_bytes=1000)
        assert packet.wire_bytes == 1000 + TCPIP_HEADER + ETHERNET_OVERHEAD

    def test_options_count_toward_wire_bytes(self):
        packet = Packet(src="a", dst="b", payload_bytes=100, options_bytes=36)
        assert packet.wire_bytes == 100 + 36 + TCPIP_HEADER + ETHERNET_OVERHEAD

    def test_gro_merged_counts_every_header(self):
        packet = Packet(src="a", dst="b", payload_bytes=2896, wire_count=2)
        assert packet.wire_bytes == 2896 + 2 * (TCPIP_HEADER + ETHERNET_OVERHEAD)

    def test_ids_are_unique(self):
        a = Packet(src="a", dst="b", payload_bytes=1)
        b = Packet(src="a", dst="b", payload_bytes=1)
        assert a.packet_id != b.packet_id
