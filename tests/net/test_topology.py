"""Tests for the point-to-point topology helper."""

from __future__ import annotations

from repro.net.nic import Nic, NicConfig
from repro.net.packet import Packet
from repro.net.topology import PointToPoint
from repro.tcp.segment import Segment


def test_bidirectional_wiring(sim):
    nic_a = Nic(sim, NicConfig(gro_flush_ns=0), name="a")
    nic_b = Nic(sim, NicConfig(gro_flush_ns=0), name="b")
    got_a, got_b = [], []
    nic_a.attach_rx_handler(lambda batch: got_a.extend(batch))
    nic_b.attach_rx_handler(lambda batch: got_b.extend(batch))
    wire = PointToPoint.connect(sim, nic_a, nic_b, propagation_delay_ns=100)

    seg_ab = Segment(conn_id=1, src="a", dst="b", seq=0, payload_len=100,
                     ack=0, wnd=1000)
    seg_ba = Segment(conn_id=1, src="b", dst="a", seq=0, payload_len=200,
                     ack=0, wnd=1000)
    nic_a.post(Packet(src="a", dst="b", payload_bytes=100, payload=seg_ab))
    nic_b.post(Packet(src="b", dst="a", payload_bytes=200, payload=seg_ba))
    sim.run()
    assert len(got_b) == 1 and got_b[0].payload_bytes == 100
    assert len(got_a) == 1 and got_a[0].payload_bytes == 200
    assert wire.forward.packets_sent == 1
    assert wire.backward.packets_sent == 1
