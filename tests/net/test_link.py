"""Tests for the link model."""

from __future__ import annotations

import pytest

from repro.errors import NetworkError
from repro.net.link import Link
from repro.net.packet import Packet
from repro.sim.rng import RngRegistry
from repro.units import SEC


def make_link(sim, bandwidth_bps=8e9, delay=1000, **kwargs):
    link = Link(sim, bandwidth_bps, delay, **kwargs)
    arrived = []
    link.attach_receiver(lambda p: arrived.append((sim.now, p)))
    return link, arrived


class TestLink:
    def test_delivery_after_serialization_plus_propagation(self, sim):
        # 8 Gbps = 1 byte/ns. 910B payload -> 1000 wire bytes -> 1000ns.
        link, arrived = make_link(sim, bandwidth_bps=8e9, delay=500)
        link.send(Packet(src="a", dst="b", payload_bytes=910))
        sim.run()
        assert len(arrived) == 1
        assert arrived[0][0] == 1000 + 500

    def test_fifo_pacing(self, sim):
        link, arrived = make_link(sim, bandwidth_bps=8e9, delay=0)
        for _ in range(3):
            link.send(Packet(src="a", dst="b", payload_bytes=910))
        sim.run()
        times = [t for t, _ in arrived]
        assert times == [1000, 2000, 3000]

    def test_statistics(self, sim):
        link, arrived = make_link(sim)
        link.send(Packet(src="a", dst="b", payload_bytes=910))
        sim.run()
        assert link.packets_sent == 1
        assert link.bytes_sent == 1000
        assert link.busy_ns == 1000

    def test_send_without_receiver_rejected(self, sim):
        link = Link(sim, 1e9, 0)
        with pytest.raises(NetworkError):
            link.send(Packet(src="a", dst="b", payload_bytes=1))

    def test_double_receiver_rejected(self, sim):
        link, _ = make_link(sim)
        with pytest.raises(NetworkError):
            link.attach_receiver(lambda p: None)

    def test_invalid_parameters(self, sim):
        with pytest.raises(NetworkError):
            Link(sim, 0, 0)
        with pytest.raises(NetworkError):
            Link(sim, 1e9, -1)
        with pytest.raises(NetworkError):
            Link(sim, 1e9, 0, loss_probability=1.0)

    def test_lossy_link_without_rng_gets_deterministic_default(self, make_sim):
        # A lossy link built without an explicit stream derives one from
        # its name, so two identical builds drop the same packets.
        outcomes = []
        for _ in range(2):
            sim = make_sim()
            link = Link(sim, 8e9, 0, name="lossy", loss_probability=0.3)
            arrived = []
            link.attach_receiver(lambda p: arrived.append(p))
            for _ in range(100):
                link.send(Packet(src="a", dst="b", payload_bytes=100))
            sim.run()
            outcomes.append((len(arrived), link.packets_dropped))
        assert outcomes[0] == outcomes[1]
        assert 0 < outcomes[0][1] < 100

    def test_default_loss_rng_varies_by_name_and_seed(self):
        from repro.net.link import default_loss_rng

        def draws(name, seed=0):
            stream = default_loss_rng(name, seed=seed)
            return [stream.random() for _ in range(5)]

        a = draws("x")
        b = draws("x")
        c = draws("y")
        d = draws("x", seed=7)
        assert a == b
        assert a != c
        assert a != d

    def test_loss_drops_packets(self, sim):
        rng = RngRegistry(1).stream("loss")
        link = Link(sim, 8e9, 0, loss_probability=0.5, loss_rng=rng)
        arrived = []
        link.attach_receiver(lambda p: arrived.append(p))
        for _ in range(200):
            link.send(Packet(src="a", dst="b", payload_bytes=100))
        sim.run()
        assert 60 < len(arrived) < 140
        assert link.packets_dropped == 200 - len(arrived)
