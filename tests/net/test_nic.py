"""Tests for the NIC: TSO, doorbells, GRO rules, interrupt coalescing."""

from __future__ import annotations

import pytest

from repro.errors import NetworkError
from repro.net.link import Link
from repro.net.nic import Nic, NicConfig
from repro.net.packet import Packet
from repro.tcp.segment import Segment

MSS = NicConfig().mss  # 1448


def make_segment(seq=0, length=MSS, psh=False, ack=0, conn=1, src="a", dst="b"):
    return Segment(
        conn_id=conn, src=src, dst=dst, seq=seq, payload_len=length,
        ack=ack, wnd=1 << 20, psh=psh,
    )


def make_tx_nic(sim, config=None):
    nic = Nic(sim, config or NicConfig(), name="tx")
    link = Link(sim, 100e9, 0, name="wire")
    nic.attach_egress(link)
    arrived = []
    link.attach_receiver(lambda p: arrived.append(p))
    return nic, arrived


def make_rx_nic(sim, config=None):
    nic = Nic(sim, config or NicConfig(), name="rx")
    delivered = []
    nic.attach_rx_handler(lambda batch: delivered.extend(batch))
    return nic, delivered


def segment_packet(segment):
    return Packet(
        src=segment.src, dst=segment.dst,
        payload_bytes=segment.payload_len, payload=segment,
    )


class TestTso:
    def test_small_packet_goes_unsliced(self, sim):
        nic, arrived = make_tx_nic(sim)
        nic.post(segment_packet(make_segment(length=500)))
        sim.run()
        assert len(arrived) == 1
        assert nic.tx_wire_packets == 1

    def test_super_segment_sliced_to_mss(self, sim):
        nic, arrived = make_tx_nic(sim)
        nic.post(segment_packet(make_segment(length=3 * MSS + 100)))
        sim.run()
        assert len(arrived) == 4
        sizes = [p.payload_bytes for p in arrived]
        assert sizes == [MSS, MSS, MSS, 100]
        # Sequence numbers are contiguous.
        seqs = [p.payload.seq for p in arrived]
        assert seqs == [0, MSS, 2 * MSS, 3 * MSS]

    def test_psh_rides_last_slice_only(self, sim):
        nic, arrived = make_tx_nic(sim)
        nic.post(segment_packet(make_segment(length=2 * MSS + 10, psh=True)))
        sim.run()
        assert [p.payload.psh for p in arrived] == [False, False, True]

    def test_oversized_descriptor_rejected(self, sim):
        nic, _ = make_tx_nic(sim)
        with pytest.raises(NetworkError):
            nic.post(segment_packet(make_segment(length=65 * 1024)))

    def test_ring_overflow_rejected(self, sim):
        config = NicConfig(tx_ring_size=2)
        nic, _ = make_tx_nic(sim, config)
        nic.post(segment_packet(make_segment(length=100)))
        # The drain is synchronous-ish; fill beyond capacity in one tick
        # by posting before running the sim.
        nic._tx_ring.extend([None, None])  # simulate a stuck ring
        with pytest.raises(NetworkError):
            nic.post(segment_packet(make_segment(length=100)))


class TestDoorbells:
    def test_doorbell_batching_rings_once_when_active(self, sim):
        nic, _ = make_tx_nic(sim)

        def burst():
            for seq in range(3):
                nic.post(segment_packet(make_segment(seq=seq * 100, length=100)))

        sim.call_at(0, burst)
        sim.run()
        assert nic.tx_descriptors == 3
        assert nic.doorbells == 1

    def test_no_batching_rings_every_time(self, sim):
        nic, _ = make_tx_nic(sim, NicConfig(doorbell_batching=False))

        def burst():
            for seq in range(3):
                nic.post(segment_packet(make_segment(seq=seq * 100, length=100)))

        sim.call_at(0, burst)
        sim.run()
        assert nic.doorbells == 3


class TestGro:
    def test_full_segments_aggregate_until_window(self, sim):
        nic, delivered = make_rx_nic(sim)
        for index in range(3):
            nic.receive(segment_packet(make_segment(seq=index * MSS)))
        sim.run()
        assert len(delivered) == 1
        assert delivered[0].payload_bytes == 3 * MSS
        assert delivered[0].wire_count == 3
        assert nic.rx_wire_packets == 3
        assert nic.rx_deliveries == 1

    def test_window_flush_time(self, sim):
        config = NicConfig(gro_flush_ns=3000)
        nic, delivered = make_rx_nic(sim, config)
        times = []
        nic._rx_handler = lambda batch: times.append(sim.now)
        nic.receive(segment_packet(make_segment()))
        sim.run()
        assert times == [3000]

    def test_psh_full_segment_merges_then_flushes_immediately(self, sim):
        nic, delivered = make_rx_nic(sim)
        nic.receive(segment_packet(make_segment(seq=0)))
        nic.receive(segment_packet(make_segment(seq=MSS, psh=True)))
        assert len(delivered) == 1  # no window wait
        assert delivered[0].payload_bytes == 2 * MSS
        assert delivered[0].payload.psh

    def test_sub_mss_never_aggregated(self, sim):
        """A short packet flushes the aggregate and stands alone — the
        Nagle-off tail's fate."""
        nic, delivered = make_rx_nic(sim)
        nic.receive(segment_packet(make_segment(seq=0)))
        nic.receive(segment_packet(make_segment(seq=MSS, length=500, psh=True)))
        assert len(delivered) == 2
        assert delivered[0].payload_bytes == MSS
        assert delivered[1].payload_bytes == 500

    def test_pure_ack_flushes_and_passes_through(self, sim):
        nic, delivered = make_rx_nic(sim)
        nic.receive(segment_packet(make_segment(seq=0)))
        ack = make_segment(seq=MSS, length=0, ack=100)
        nic.receive(segment_packet(ack))
        assert len(delivered) == 2
        assert delivered[1].payload.is_pure_ack

    def test_non_contiguous_flushes(self, sim):
        nic, delivered = make_rx_nic(sim)
        nic.receive(segment_packet(make_segment(seq=0)))
        nic.receive(segment_packet(make_segment(seq=5 * MSS)))  # gap
        assert len(delivered) == 1  # first flushed standalone
        sim.run()
        assert len(delivered) == 2

    def test_size_cap_flushes(self, sim):
        config = NicConfig(gro_max_bytes=2 * MSS)
        nic, delivered = make_rx_nic(sim, config)
        for index in range(4):
            nic.receive(segment_packet(make_segment(seq=index * MSS)))
        sim.run()
        assert [p.payload_bytes for p in delivered] == [2 * MSS, 2 * MSS]

    def test_flows_do_not_mix(self, sim):
        nic, delivered = make_rx_nic(sim)
        nic.receive(segment_packet(make_segment(seq=0, conn=1)))
        nic.receive(segment_packet(make_segment(seq=0, conn=2)))
        sim.run()
        assert len(delivered) == 2

    def test_gro_disabled_delivers_per_packet(self, sim):
        config = NicConfig(gro_flush_ns=0)
        nic, delivered = make_rx_nic(sim, config)
        for index in range(3):
            nic.receive(segment_packet(make_segment(seq=index * MSS)))
        assert len(delivered) == 3


class TestInterruptCoalescing:
    def test_coalescing_batches_deliveries(self, sim):
        config = NicConfig(gro_flush_ns=0, rx_coalesce_ns=10_000)
        nic = Nic(sim, config)
        batches = []
        nic.attach_rx_handler(lambda batch: batches.append(list(batch)))
        for index in range(3):
            nic.receive(segment_packet(make_segment(seq=index * MSS)))
        sim.run()
        assert len(batches) == 1
        assert len(batches[0]) == 3
        assert nic.rx_interrupts == 1
