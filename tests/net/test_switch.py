"""Tests for the switch and star topology."""

from __future__ import annotations

import pytest

from repro.errors import NetworkError
from repro.net.nic import Nic, NicConfig
from repro.net.packet import Packet
from repro.net.switch import Star, Switch
from repro.tcp.segment import Segment


def make_nic(sim, name):
    nic = Nic(sim, NicConfig(gro_flush_ns=0), name=name)
    received = []
    nic.attach_rx_handler(lambda batch: received.extend(batch))
    return nic, received


def data_packet(src, dst, conn=1, length=100, seq=0):
    segment = Segment(conn_id=conn, src=src, dst=dst, seq=seq,
                      payload_len=length, ack=0, wnd=1 << 20)
    return Packet(src=src, dst=dst, payload_bytes=length, payload=segment)


class TestStar:
    def test_forwards_between_any_pair(self, sim):
        nic_a, got_a = make_nic(sim, "a")
        nic_b, got_b = make_nic(sim, "b")
        nic_c, got_c = make_nic(sim, "c")
        Star.connect(sim, {"a": nic_a, "b": nic_b, "c": nic_c})
        nic_a.post(data_packet("a", "c"))
        nic_b.post(data_packet("b", "a", conn=2))
        sim.run()
        assert len(got_c) == 1 and got_c[0].src == "a"
        assert len(got_a) == 1 and got_a[0].src == "b"
        assert got_b == []

    def test_latency_includes_both_hops_and_forwarding(self, sim):
        nic_a, _ = make_nic(sim, "a")
        nic_b, got_b = make_nic(sim, "b")
        times = []
        nic_b._rx_handler = lambda batch: times.append(sim.now)
        star = Star.connect(
            sim, {"a": nic_a, "b": nic_b},
            bandwidth_bps=8e9, propagation_delay_ns=1000,
            forwarding_delay_ns=500,
        )
        nic_a.post(data_packet("a", "b", length=910))  # 1000 wire bytes
        sim.run()
        # serialize(1000ns) + prop(1000) + fwd(500) + serialize(1000) + prop(1000)
        assert times == [4500]

    def test_unknown_destination_raises(self, sim):
        nic_a, _ = make_nic(sim, "a")
        nic_b, _ = make_nic(sim, "b")
        Star.connect(sim, {"a": nic_a, "b": nic_b})
        nic_a.post(data_packet("a", "nowhere"))
        with pytest.raises(NetworkError):
            sim.run()

    def test_needs_two_hosts(self, sim):
        nic_a, _ = make_nic(sim, "a")
        with pytest.raises(NetworkError):
            Star.connect(sim, {"a": nic_a})

    def test_duplicate_port_rejected(self, sim):
        switch = Switch(sim)
        from repro.net.link import Link

        link = Link(sim, 1e9, 0)
        switch.attach_port("a", link)
        with pytest.raises(NetworkError):
            switch.attach_port("a", link)

    def test_fan_in_shares_server_downlink(self, sim):
        """Two clients bursting at one server serialize on its downlink."""
        nic_a, _ = make_nic(sim, "a")
        nic_b, _ = make_nic(sim, "b")
        nic_srv, _ = make_nic(sim, "server")
        times = []
        nic_srv._rx_handler = lambda batch: times.append(sim.now)
        Star.connect(
            sim, {"a": nic_a, "b": nic_b, "server": nic_srv},
            bandwidth_bps=8e9, propagation_delay_ns=0, forwarding_delay_ns=0,
        )
        nic_a.post(data_packet("a", "server", conn=1, length=910))
        nic_b.post(data_packet("b", "server", conn=2, length=910))
        sim.run()
        # Both uplinks serialize in parallel (1000ns each), but the
        # shared downlink serializes them back to back.
        assert times == [2000, 3000]
