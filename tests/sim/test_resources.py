"""Tests for stores and resources."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.process import Timeout
from repro.sim.resources import Resource, Store


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        got = []

        def consumer():
            item = yield store.get()
            got.append(item)

        sim.spawn(consumer())
        store.put("x")
        sim.run()
        assert got == ["x"]

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        got = []

        def consumer():
            item = yield store.get()
            got.append((item, sim.now))

        sim.spawn(consumer())
        sim.call_at(100, lambda: store.put("late"))
        sim.run()
        assert got == [("late", 100)]

    def test_fifo_ordering_of_items_and_waiters(self, sim):
        store = Store(sim)
        got = []

        def consumer(name):
            item = yield store.get()
            got.append((name, item))

        sim.spawn(consumer("first"))
        sim.spawn(consumer("second"))
        sim.call_at(10, lambda: store.put(1))
        sim.call_at(20, lambda: store.put(2))
        sim.run()
        assert got == [("first", 1), ("second", 2)]

    def test_capacity_overflow_raises(self, sim):
        store = Store(sim, capacity=1)
        store.put("a")
        with pytest.raises(SimulationError):
            store.put("b")

    def test_try_get(self, sim):
        store = Store(sim)
        assert store.try_get() is None
        store.put("x")
        assert store.try_get() == "x"
        assert len(store) == 0

    def test_try_get_with_waiters_rejected(self, sim):
        store = Store(sim)

        def consumer():
            yield store.get()

        sim.spawn(consumer())
        sim.run(until=10)
        with pytest.raises(SimulationError):
            store.try_get()

    def test_invalid_capacity(self, sim):
        with pytest.raises(SimulationError):
            Store(sim, capacity=0)


class TestResource:
    def test_acquire_release(self, sim):
        resource = Resource(sim, capacity=1)
        log = []

        def worker(name, hold):
            yield resource.acquire()
            log.append((name, "in", sim.now))
            yield Timeout(hold)
            resource.release()
            log.append((name, "out", sim.now))

        sim.spawn(worker("a", 100))
        sim.spawn(worker("b", 50))
        sim.run()
        assert log == [
            ("a", "in", 0),
            ("a", "out", 100),
            ("b", "in", 100),
            ("b", "out", 150),
        ]

    def test_capacity_two_admits_two(self, sim):
        resource = Resource(sim, capacity=2)
        entries = []

        def worker(name):
            yield resource.acquire()
            entries.append((name, sim.now))
            yield Timeout(100)
            resource.release()

        for name in ("a", "b", "c"):
            sim.spawn(worker(name))
        sim.run()
        assert entries == [("a", 0), ("b", 0), ("c", 100)]

    def test_release_without_acquire_rejected(self, sim):
        resource = Resource(sim)
        with pytest.raises(SimulationError):
            resource.release()

    def test_counters(self, sim):
        resource = Resource(sim, capacity=3)

        def worker():
            yield resource.acquire()
            yield Timeout(10)

        sim.spawn(worker())
        sim.run(until=5)
        assert resource.in_use == 1
        assert resource.available == 2
