"""Tests for trace recording."""

from __future__ import annotations

from repro.sim.trace import TraceRecorder


class TestTraceRecorder:
    def test_disabled_by_default(self, sim):
        recorder = TraceRecorder(sim)
        recorder.emit("src", "event")
        assert len(recorder) == 0

    def test_records_when_enabled(self, sim):
        recorder = TraceRecorder(sim, enabled=True)
        sim.call_at(42, lambda: recorder.emit("nic", "tx", {"n": 1}))
        sim.run()
        assert len(recorder) == 1
        record = recorder.records[0]
        assert record.time == 42
        assert record.source == "nic"
        assert record.event == "tx"
        assert record.detail == {"n": 1}

    def test_filter_by_source_and_event(self, sim):
        recorder = TraceRecorder(sim, enabled=True)
        recorder.emit("nic", "tx")
        recorder.emit("nic", "rx")
        recorder.emit("tcp", "tx")
        assert len(list(recorder.filter(source="nic"))) == 2
        assert len(list(recorder.filter(event="tx"))) == 2
        assert len(list(recorder.filter(source="nic", event="tx"))) == 1

    def test_clear(self, sim):
        recorder = TraceRecorder(sim, enabled=True)
        recorder.emit("a", "b")
        recorder.clear()
        assert len(recorder) == 0
