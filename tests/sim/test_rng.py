"""Tests for seeded random streams."""

from __future__ import annotations

import pytest

from repro.sim.rng import RngRegistry, RngStream


class TestRngRegistry:
    def test_same_name_same_stream_object(self):
        registry = RngRegistry(1)
        assert registry.stream("a") is registry.stream("a")

    def test_different_names_independent(self):
        registry = RngRegistry(1)
        a = [registry.stream("a").random() for _ in range(5)]
        b = [registry.stream("b").random() for _ in range(5)]
        assert a != b

    def test_same_seed_reproducible(self):
        first = [RngRegistry(9).stream("x").random() for _ in range(3)]
        second = [RngRegistry(9).stream("x").random() for _ in range(3)]
        assert first == second

    def test_different_seeds_differ(self):
        assert (
            RngRegistry(1).stream("x").random()
            != RngRegistry(2).stream("x").random()
        )

    def test_adding_a_stream_does_not_perturb_others(self):
        """The whole point of named streams: a new consumer must not
        change existing draw sequences."""
        registry_a = RngRegistry(5)
        s = registry_a.stream("arrivals")
        first = [s.random() for _ in range(3)]

        registry_b = RngRegistry(5)
        registry_b.stream("some-new-consumer").random()
        s2 = registry_b.stream("arrivals")
        second = [s2.random() for _ in range(3)]
        assert first == second

    def test_contains(self):
        registry = RngRegistry(1)
        assert "x" not in registry
        registry.stream("x")
        assert "x" in registry


class TestRngStream:
    def test_exponential_mean(self):
        stream = RngRegistry(3).stream("exp")
        samples = [stream.exponential_ns(1000.0) for _ in range(20000)]
        mean = sum(samples) / len(samples)
        assert 950 < mean < 1050

    def test_exponential_rejects_bad_mean(self):
        stream = RngRegistry(3).stream("exp")
        with pytest.raises(ValueError):
            stream.exponential_ns(0)

    def test_uniform_range(self):
        stream = RngRegistry(3).stream("uni")
        for _ in range(100):
            value = stream.uniform_ns(10, 20)
            assert 10 <= value <= 20
        with pytest.raises(ValueError):
            stream.uniform_ns(20, 10)

    def test_bernoulli_bounds(self):
        stream = RngRegistry(3).stream("bern")
        assert not any(stream.bernoulli(0.0) for _ in range(100))
        assert all(stream.bernoulli(1.0) for _ in range(100))
        with pytest.raises(ValueError):
            stream.bernoulli(1.5)

    def test_bernoulli_rate(self):
        stream = RngRegistry(3).stream("bern2")
        hits = sum(stream.bernoulli(0.3) for _ in range(20000))
        assert 0.27 < hits / 20000 < 0.33
