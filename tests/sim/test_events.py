"""Tests for one-shot events."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.events import Event


class TestEvent:
    def test_trigger_delivers_value_to_callbacks(self, sim):
        event = Event(sim, name="e")
        seen = []
        event.add_callback(seen.append)
        event.trigger("payload")
        sim.run()
        assert seen == ["payload"]

    def test_multiple_waiters_all_resumed(self, sim):
        event = Event(sim)
        seen = []
        for index in range(3):
            event.add_callback(lambda value, i=index: seen.append((i, value)))
        event.trigger(7)
        sim.run()
        assert seen == [(0, 7), (1, 7), (2, 7)]

    def test_late_subscriber_gets_stored_value(self, sim):
        event = Event(sim)
        event.trigger("early")
        seen = []
        event.add_callback(seen.append)
        sim.run()
        assert seen == ["early"]

    def test_double_trigger_rejected(self, sim):
        event = Event(sim)
        event.trigger()
        with pytest.raises(SimulationError):
            event.trigger()

    def test_triggered_flag_and_value(self, sim):
        event = Event(sim)
        assert not event.triggered
        assert event.value is None
        event.trigger(3)
        assert event.triggered
        assert event.value == 3

    def test_delivery_is_asynchronous(self, sim):
        """Callbacks run at the same instant but not synchronously
        inside trigger()."""
        event = Event(sim)
        seen = []
        event.add_callback(lambda _: seen.append("cb"))
        event.trigger()
        assert seen == []  # not yet
        sim.run()
        assert seen == ["cb"]
