"""The batch pipeline's byte-identity and bookkeeping contracts."""

from __future__ import annotations

import math
import random

import pytest

from repro.analysis.counters import CounterCollector
from repro.analysis.offline import window_estimate
from repro.config import numpy_available, resolve_backend
from repro.core.estimator import E2EEstimator
from repro.core.qstate import QueueState
from repro.errors import EstimationError, WorkloadError
from repro.loadgen.stats import summarize
from repro.sim.batch import (
    FLUSH_CHUNK_ROWS,
    EstimateBatch,
    LatencyBatch,
    SampleBatch,
    bulk_summarize,
)
from repro.sim.loop import Simulator

BACKENDS = ["python"] + (["numpy"] if numpy_available() else [])


def summaries_equal(a, b) -> bool:
    """Field-wise equality that treats NaN == NaN (empty summaries)."""
    for field in ("count", "mean_ns", "p50_ns", "p90_ns", "p99_ns",
                  "max_ns", "stddev_ns"):
        left, right = getattr(a, field), getattr(b, field)
        if isinstance(left, float) and math.isnan(left):
            if not (isinstance(right, float) and math.isnan(right)):
                return False
        elif left != right:
            return False
    return True


# ---------------------------------------------------------------------------
# bulk_summarize: the scalar twin, bit for bit.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_bulk_summarize_matches_scalar_on_random_ints(backend):
    rng = random.Random(7)
    for trial in range(50):
        count = rng.randrange(0, 400)
        values = [rng.randrange(0, 10**9) for _ in range(count)]
        assert summaries_equal(
            bulk_summarize(list(values), backend), summarize(values)
        ), f"trial {trial}"


@pytest.mark.parametrize("backend", BACKENDS)
def test_bulk_summarize_matches_scalar_on_random_floats(backend):
    rng = random.Random(11)
    for trial in range(50):
        count = rng.randrange(1, 300)
        values = [rng.uniform(0.0, 1e9) for _ in range(count)]
        assert summaries_equal(
            bulk_summarize(list(values), backend), summarize(values)
        ), f"trial {trial}"


def test_bulk_summarize_empty_is_empty_summary():
    for backend in BACKENDS:
        assert bulk_summarize([], backend).count == 0


@pytest.mark.skipif(not numpy_available(), reason="numpy backend absent")
def test_bulk_summarize_survives_int64_overflow_guard():
    # Values big enough that max * count cannot be int64-represented:
    # the exact-sum guard must fall back to python's arbitrary precision
    # rather than silently wrapping.
    values = [2**61, 2**61, 2**61, 2**61]
    assert bulk_summarize(values, "numpy").mean_ns == summarize(values).mean_ns


# ---------------------------------------------------------------------------
# SampleBatch: columnar collection == object collection.
# ---------------------------------------------------------------------------


class _Endpoint:
    """Three queue states over one clock, like a socket exposes."""

    def __init__(self, sim):
        clock = lambda: sim.now  # noqa: E731 — sockets bind host.clock
        self.qs_unacked = QueueState(clock)
        self.qs_unread = QueueState(clock)
        self.qs_ackdelay = QueueState(clock)

    def queues(self):
        return (self.qs_unacked, self.qs_unread, self.qs_ackdelay)


def _drive(sim, client, server, rng, ticks=300):
    """Random queue churn: arrivals, departures, same-tick coalescing."""
    for _ in range(ticks):
        sim.now += rng.randrange(0, 5)  # exercise dt==0 coalescing too
        for endpoint in (client, server):
            for queue in endpoint.queues():
                if rng.random() < 0.7:
                    queue.track(rng.randrange(0, 4))
                if queue.size and rng.random() < 0.5:
                    queue.track(-rng.randrange(0, queue.size + 1))


@pytest.mark.parametrize("backend", BACKENDS)
def test_sample_batch_materializes_identical_samples(backend):
    sim = Simulator()
    rng = random.Random(13)
    client, server = _Endpoint(sim), _Endpoint(sim)
    batch = SampleBatch(backend)
    shadow = []

    from repro.analysis.counters import CounterSample, TripleSnapshot

    for _ in range(40):
        _drive(sim, client, server, rng, ticks=5)
        # Legacy capture first on cloned state is impossible (capture
        # mutates via track(0)) — but track(0) is idempotent at fixed
        # time, so capturing both ways back-to-back sees equal values.
        batch.append(sim.now, client, server)
        shadow.append(
            CounterSample(
                time=sim.now,
                client=TripleSnapshot.capture(client),
                server=TripleSnapshot.capture(server),
            )
        )
    assert batch.sample_count == len(shadow)
    assert batch.samples() == shadow


@pytest.mark.parametrize("backend", BACKENDS)
def test_sample_batch_window_estimate_matches_offline(backend):
    sim = Simulator()
    rng = random.Random(17)
    client, server = _Endpoint(sim), _Endpoint(sim)
    batch = SampleBatch(backend)
    for _ in range(60):
        _drive(sim, client, server, rng, ticks=3)
        batch.append(sim.now, client, server)
    batch.flush()
    samples = batch.samples()
    start = samples[5].time
    end = samples[-5].time
    assert batch.window_estimate(start, end) == window_estimate(
        samples, start, end
    )
    with pytest.raises(EstimationError):
        batch.window_estimate(end + 10**9, end + 2 * 10**9)


@pytest.mark.parametrize("backend", BACKENDS)
def test_sample_batch_flushes_count_chunk_conversions(backend):
    sim = Simulator()
    client, server = _Endpoint(sim), _Endpoint(sim)
    batch = SampleBatch(backend)
    rows = FLUSH_CHUNK_ROWS + 7
    for _ in range(rows):
        sim.now += 1
        batch.append(sim.now, client, server)
    assert batch.flushes == 1  # the full chunk converted mid-stream
    batch.flush()
    assert batch.flushes == 2  # the 7-row tail
    batch.flush()
    assert batch.flushes == 2  # idempotent on empty pending
    assert batch.sample_count == rows
    assert batch.row(FLUSH_CHUNK_ROWS + 3)[0] == batch.samples()[-4].time


def test_sample_batch_rejects_unknown_backend_and_bad_index():
    with pytest.raises(WorkloadError):
        SampleBatch("legacy")
    batch = SampleBatch("python")
    with pytest.raises(WorkloadError):
        batch.row(0)


# ---------------------------------------------------------------------------
# CounterCollector in batch mode.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_collector_batch_mode_equals_legacy_mode(backend):
    def build(batch):
        sim = Simulator()
        client, server = _Endpoint(sim), _Endpoint(sim)
        collector = CounterCollector(
            sim, client, server, period_ns=100, batch=batch
        )
        rng = random.Random(23)

        def churn():
            for endpoint in (client, server):
                for queue in endpoint.queues():
                    queue.track(rng.randrange(0, 3))
            sim.call_after(37, churn)

        churn()
        collector.start()
        sim.run(until=5_000)
        collector.stop()
        return collector

    legacy = build(None)
    batched = build(SampleBatch(backend))
    assert batched.sample_count == legacy.sample_count
    assert batched.samples == legacy.samples
    assert batched.window_estimate(500, 4_500) == legacy.window_estimate(
        500, 4_500
    )


# ---------------------------------------------------------------------------
# LatencyBatch: bulk window summaries == scalar filters.
# ---------------------------------------------------------------------------


class _Record:
    __slots__ = ("completed_at", "latency_ns", "send_latency_ns", "kind")

    def __init__(self, completed_at, latency_ns, send_latency_ns, kind):
        self.completed_at = completed_at
        self.latency_ns = latency_ns
        self.send_latency_ns = send_latency_ns
        self.kind = kind


@pytest.mark.parametrize("backend", BACKENDS)
def test_latency_batch_matches_scalar_window_summaries(backend):
    rng = random.Random(29)
    conns = []
    for _ in range(3):
        now = 0
        records = []
        for _ in range(rng.randrange(10, 120)):
            now += rng.randrange(1, 10_000)
            records.append(
                _Record(
                    completed_at=now,
                    latency_ns=rng.randrange(1, 10**7),
                    send_latency_ns=rng.randrange(1, 10**6),
                    kind=rng.choice(["SET", "GET", "PING"]),
                )
            )
        conns.append(records)
    start, end = 50_000, 400_000

    flat = [r for records in conns for r in records]
    inside = [r for r in flat if start <= r.completed_at <= end]
    batch = LatencyBatch.from_connections(conns, backend)
    count, latency, send, per_kind = batch.window_summaries(start, end)

    assert len(batch) == len(flat)
    assert count == len(inside)
    assert summaries_equal(latency, summarize([r.latency_ns for r in inside]))
    assert summaries_equal(
        send, summarize([r.send_latency_ns for r in inside])
    )
    expected_kinds = {
        kind
        for kind in ("SET", "GET")
        if any(r.kind == kind for r in inside)
    }
    assert set(per_kind) == expected_kinds
    for kind in expected_kinds:
        assert summaries_equal(
            per_kind[kind],
            summarize([r.latency_ns for r in inside if r.kind == kind]),
        )


# ---------------------------------------------------------------------------
# EstimateBatch: estimator history as flat columns.
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("backend", BACKENDS)
def test_estimator_history_records_every_sample(backend):
    sim = Simulator()
    local, remote = _Endpoint(sim), _Endpoint(sim)
    history = EstimateBatch(backend)
    estimator = E2EEstimator(local, remote=remote, history=history)
    rng = random.Random(31)
    produced = 0
    for _ in range(50):
        sim.now += rng.randrange(1, 1_000)
        for endpoint in (local, remote):
            for queue in endpoint.queues():
                queue.track(rng.randrange(0, 3))
                if queue.size:
                    queue.track(-1)
        if estimator.sample() is not None:
            produced += 1
    assert len(history) == produced
    times, latencies, throughputs = history.columns()
    assert len(times) == len(latencies) == len(throughputs) == produced
    summary = history.summary()
    assert summary["updates"] == produced
    assert summary["defined"] <= produced
    if summary["defined"]:
        assert summary["mean_latency_ns"] >= 0.0


def test_resolve_backend_contract():
    assert resolve_backend("legacy") == "legacy"
    assert resolve_backend("python") == "python"
    auto = resolve_backend("auto")
    assert auto in ("python", "numpy")
    with pytest.raises(WorkloadError):
        resolve_backend("fortran")
