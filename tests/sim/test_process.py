"""Tests for generator processes."""

from __future__ import annotations

import pytest

from repro.errors import ProcessError
from repro.sim.events import Event
from repro.sim.process import Process, Timeout


class TestTimeout:
    def test_process_sleeps_for_delay(self, sim):
        times = []

        def proc():
            times.append(sim.now)
            yield Timeout(100)
            times.append(sim.now)
            yield Timeout(50)
            times.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert times == [0, 100, 150]

    def test_negative_timeout_rejected(self, sim):
        with pytest.raises(ProcessError):
            Timeout(-1)


class TestProcessLifecycle:
    def test_return_value_becomes_result(self, sim):
        def proc():
            yield Timeout(1)
            return "done"

        process = sim.spawn(proc())
        sim.run()
        assert not process.alive
        assert process.result == "done"

    def test_spawn_requires_generator(self, sim):
        def not_a_generator():
            return 42

        with pytest.raises(ProcessError):
            Process(sim, not_a_generator)  # missing call / not a generator

    def test_yielding_garbage_raises(self, sim):
        def proc():
            yield 42

        sim.spawn(proc())
        with pytest.raises(ProcessError):
            sim.run()

    def test_waiting_on_event_receives_value(self, sim):
        event = Event(sim)
        got = []

        def proc():
            value = yield event
            got.append(value)

        sim.spawn(proc())
        sim.call_at(50, lambda: event.trigger("hello"))
        sim.run()
        assert got == ["hello"]

    def test_parent_waits_for_child(self, sim):
        order = []

        def child():
            yield Timeout(100)
            order.append("child")
            return "child-result"

        def parent():
            result = yield sim.spawn(child(), name="child")
            order.append(("parent", result, sim.now))

        sim.spawn(parent())
        sim.run()
        assert order[0] == "child"
        assert order[1] == ("parent", "child-result", 100)

    def test_interrupt_terminates(self, sim):
        progressed = []

        def proc():
            yield Timeout(100)
            progressed.append(True)

        process = sim.spawn(proc())
        sim.call_at(50, process.interrupt)
        sim.run()
        assert not process.alive
        assert progressed == []

    def test_crash_propagates_and_marks_failure(self, sim):
        def proc():
            yield Timeout(1)
            raise ValueError("boom")

        process = sim.spawn(proc())
        with pytest.raises(ValueError):
            sim.run()
        assert not process.alive
        assert isinstance(process.failure, ValueError)

    def test_two_processes_interleave(self, sim):
        log = []

        def ticker(name, period):
            for _ in range(3):
                yield Timeout(period)
                log.append((name, sim.now))

        sim.spawn(ticker("a", 10))
        sim.spawn(ticker("b", 15))
        sim.run()
        # At t=30 both tick; b's timer was scheduled earlier (t=15 vs
        # t=20), so FIFO tie-breaking runs b first.
        assert log == [
            ("a", 10), ("b", 15), ("a", 20), ("b", 30), ("a", 30), ("b", 45),
        ]
