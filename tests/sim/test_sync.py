"""The conservative time-window engine's determinism contract.

The toy scenario is a message ring: component 0 seeds a token that hops
to the next component with one lookahead of latency per hop, and every
component logs what it received.  The log — and the engine's own
window/exchange counts — must be byte-identical for every
``(shards, workers)`` combination, which is the same contract the
shared-bottleneck experiment relies on at full scale.
"""

from __future__ import annotations

from functools import partial

import pytest

from repro.errors import CampaignError, WorkloadError
from repro.sim.sync import (
    Mailbox,
    SyncComponent,
    SyncMessage,
    WindowPlan,
    run_windowed,
)


# ---------------------------------------------------------------------------
# WindowPlan: the schedule is a function of (horizon, lookahead) only.
# ---------------------------------------------------------------------------


def test_window_ends_tile_the_horizon():
    assert WindowPlan(100, 30).window_ends() == (30, 60, 90, 100)
    assert WindowPlan(90, 30).window_ends() == (30, 60, 90)
    assert WindowPlan(100, 1).window_ends() == tuple(range(1, 101))


def test_infinite_or_oversized_lookahead_is_one_window():
    assert WindowPlan(100).window_ends() == (100,)
    assert WindowPlan(100, None).window_ends() == (100,)
    assert WindowPlan(100, 100).window_ends() == (100,)
    assert WindowPlan(100, 250).window_ends() == (100,)


def test_window_plan_rejects_degenerate_inputs():
    with pytest.raises(WorkloadError):
        WindowPlan(0, 10)
    with pytest.raises(WorkloadError):
        WindowPlan(-5)
    with pytest.raises(WorkloadError):
        WindowPlan(100, 0)
    with pytest.raises(WorkloadError):
        WindowPlan(100, -1)


# ---------------------------------------------------------------------------
# Mailbox: per-source sequence numbers in post order.
# ---------------------------------------------------------------------------


def test_mailbox_sequences_and_drains():
    box = Mailbox(src=3)
    box.post(100, 1, "a")
    box.post(50, 2, "b")  # earlier arrival still gets the later sequence
    drained = box.drain()
    assert [(m.arrival_ns, m.src, m.dst, m.sequence, m.payload)
            for m in drained] == [(100, 3, 1, 0, "a"), (50, 3, 2, 1, "b")]
    assert drained[0].key == (100, 3, 0)
    assert box.drain() == []


# ---------------------------------------------------------------------------
# The toy ring (module-level: builders must pickle for workers > 1).
# ---------------------------------------------------------------------------

_HOPS = 17
_LOOKAHEAD = 10
_HORIZON = 400


class _RingComponent(SyncComponent):
    """Passes a counter token around the ring, one lookahead per hop."""

    def __init__(self, index: int, count: int):
        self.index = index
        self.count = count
        self.log: list[tuple[int, int, int]] = []
        self._outbox: list[tuple[int, int, object]] = []
        self._events = 0

    def _send(self, arrival_ns: int, payload: int) -> None:
        self._outbox.append(
            (arrival_ns, (self.index + 1) % self.count, payload)
        )

    def deliver(self, message: SyncMessage) -> None:
        self.log.append((message.arrival_ns, message.src, message.payload))
        self._events += 1
        if message.payload < _HOPS:
            self._send(message.arrival_ns + _LOOKAHEAD, message.payload + 1)

    def advance(self, until_ns: int):
        if self.index == 0 and until_ns >= _LOOKAHEAD and not self._events \
                and not self.log:
            # Seed once: the token leaves component 0 in the first window.
            self._send(until_ns + _LOOKAHEAD, 1)
            self._events = 1
        box = Mailbox(self.index)
        for arrival_ns, dst, payload in self._outbox:
            box.post(arrival_ns, dst, payload)
        self._outbox = []
        return box.drain()

    def events_executed(self) -> int:
        return self._events

    def finish(self):
        return tuple(self.log)


def _build_ring(count: int, index: int) -> _RingComponent:
    return _RingComponent(index, count)


def test_ring_is_byte_identical_across_shards_and_workers():
    count = 3
    plan = WindowPlan(_HORIZON, _LOOKAHEAD)
    reference = run_windowed(partial(_build_ring, count), count, plan)
    # The token visits every component; the log is non-trivial.
    assert sum(len(log) for log in reference.results) == _HOPS
    assert reference.windows == len(plan.window_ends())
    assert reference.exchanged_events >= _HOPS
    for shards, workers in ((2, 1), (3, 1), (2, 2)):
        run = run_windowed(
            partial(_build_ring, count), count, plan,
            shards=shards, workers=workers,
        )
        assert run.results == reference.results, (shards, workers)
        assert run.windows == reference.windows
        assert run.exchanged_events == reference.exchanged_events
        assert run.events_executed == reference.events_executed


def test_single_window_degenerates_to_shard_map():
    # Infinite lookahead: one window, no exchange traffic at all (the
    # ring never gets to hop because everything arrives post-horizon).
    count = 3
    run = run_windowed(
        partial(_build_ring, count), count, WindowPlan(_HORIZON), shards=3
    )
    assert run.windows == 1


def test_metrics_count_windows_and_exchanges():
    from repro.obs.metrics import MetricsRegistry

    count = 2
    plan = WindowPlan(60, _LOOKAHEAD)
    metrics = MetricsRegistry()
    run = run_windowed(
        partial(_build_ring, count), count, plan, metrics=metrics
    )
    counters = metrics.snapshot()["counters"]
    assert counters["sim.sync.windows"] == run.windows
    assert counters["sim.sync.exchanged_events"] == run.exchanged_events


class _CheatingComponent(SyncComponent):
    """Emits a message arriving inside its own window."""

    def __init__(self, index: int):
        self.index = index

    def deliver(self, message):  # pragma: no cover - never reached
        raise AssertionError

    def advance(self, until_ns: int):
        box = Mailbox(self.index)
        box.post(until_ns, (self.index + 1) % 2, "too-soon")
        return box.drain()

    def finish(self):
        return None


def _build_cheater(index: int) -> _CheatingComponent:
    return _CheatingComponent(index)


def test_lookahead_violation_is_rejected():
    with pytest.raises((WorkloadError, CampaignError)) as excinfo:
        run_windowed(_build_cheater, 2, WindowPlan(40, 10), shards=2)
    assert "lookahead violation" in str(excinfo.value)
