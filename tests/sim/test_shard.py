"""The sharding primitives' determinism contract."""

from __future__ import annotations

import random

import pytest

from repro.errors import WorkloadError
from repro.sim.shard import ShardPlan, merge_digest, merge_streams


# ---------------------------------------------------------------------------
# ShardPlan: fixed, exhaustive, non-overlapping partitions.
# ---------------------------------------------------------------------------


def test_round_robin_partitions_exhaustively():
    plan = ShardPlan.round_robin(7, 3)
    assert plan.count == 7
    assert plan.shards == 3
    assert plan.assignments == ((0, 3, 6), (1, 4), (2, 5))
    # Every component lands exactly once, in its claimed shard.
    seen = sorted(i for group in plan.assignments for i in group)
    assert seen == list(range(7))
    for shard, group in enumerate(plan.assignments):
        for index in group:
            assert plan.shard_of(index) == shard


def test_round_robin_drops_empty_shards():
    plan = ShardPlan.round_robin(2, 8)
    assert plan.shards == 2
    assert plan.assignments == ((0,), (1,))


def test_round_robin_single_shard_is_identity():
    plan = ShardPlan.round_robin(5, 1)
    assert plan.assignments == ((0, 1, 2, 3, 4),)


def test_round_robin_rejects_degenerate_inputs():
    with pytest.raises(WorkloadError):
        ShardPlan.round_robin(0, 2)
    with pytest.raises(WorkloadError):
        ShardPlan.round_robin(4, 0)
    with pytest.raises(WorkloadError):
        ShardPlan.round_robin(4, 2).shard_of(4)


def test_plans_depend_only_on_count_and_shards():
    assert ShardPlan.round_robin(9, 4) == ShardPlan.round_robin(9, 4)


def test_shard_of_follows_stored_partition_not_modulo():
    # A hand-built plan whose assignments are NOT index % shards: the
    # lookup must answer from the partition itself.
    plan = ShardPlan(count=4, shards=2, assignments=((3, 0), (1, 2)))
    assert plan.shard_of(3) == 0
    assert plan.shard_of(0) == 0
    assert plan.shard_of(1) == 1
    assert plan.shard_of(2) == 1


def test_shard_of_rejects_component_missing_from_partition():
    # count says 3 components but the partition only places two of them.
    plan = ShardPlan(count=3, shards=2, assignments=((0,), (2,)))
    with pytest.raises(WorkloadError):
        plan.shard_of(1)


# ---------------------------------------------------------------------------
# merge_streams: partition-invariant total order.
# ---------------------------------------------------------------------------


def _random_components(rng, count):
    """Per-component event lists with non-decreasing timestamps,
    including deliberate cross-component timestamp collisions."""
    components = []
    for component in range(count):
        now = 0
        events = []
        for serial in range(rng.randrange(0, 30)):
            now += rng.randrange(0, 3)  # 0 steps create ties
            events.append((now, f"c{component}e{serial}"))
        components.append((component, events))
    return components


def test_merge_is_sorted_by_contract_key():
    rng = random.Random(41)
    merged = merge_streams(_random_components(rng, 5))
    keys = [(t, c, s) for t, c, s, _ in merged]
    assert keys == sorted(keys)
    # Per-component sequences are that component's emission order.
    for component, events in _random_components(random.Random(41), 5):
        own = [(t, s, p) for t, c, s, p in merged if c == component]
        assert own == [(t, s, p) for s, (t, p) in enumerate(events)]


def test_merge_is_invariant_to_partition_and_stream_order():
    rng = random.Random(43)
    components = _random_components(rng, 6)
    reference = merge_streams(components)
    fingerprint = merge_digest(reference)
    for shards in (1, 2, 3, 6):
        plan = ShardPlan.round_robin(6, shards)
        # Simulate shard-major arrival: each shard returns its own
        # components' streams, concatenated in shard order — i.e. NOT
        # global component order.
        shard_major = [
            components[index]
            for group in plan.assignments
            for index in group
        ]
        merged = merge_streams(shard_major)
        assert merged == reference
        assert merge_digest(merged) == fingerprint
    # Even adversarial stream order (reversed) merges identically.
    assert merge_streams(list(reversed(components))) == reference


def test_merge_orders_timestamp_ties_by_component_then_sequence():
    merged = merge_streams(
        [
            (1, [(10, "b0"), (10, "b1")]),
            (0, [(10, "a0"), (20, "a1")]),
        ]
    )
    assert [payload for _, _, _, payload in merged] == [
        "a0", "b0", "b1", "a1"
    ]


def test_merge_rejects_out_of_order_component_stream():
    with pytest.raises(WorkloadError):
        merge_streams([(0, [(5, "x"), (3, "y")])])


def test_merge_rejects_duplicate_component_indices():
    # Two streams claiming component 1 would silently interleave under
    # the contract key; the merge must refuse instead.
    with pytest.raises(WorkloadError, match="component 1"):
        merge_streams([(0, [(1, "a")]), (1, [(2, "b")]), (1, [(3, "c")])])


def test_merge_handles_empty_streams():
    assert merge_streams([]) == []
    merged = merge_streams([(0, []), (2, [(7, "x")]), (1, [])])
    assert merged == [(7, 2, 0, "x")]
    # All-empty streams still validate duplicates.
    with pytest.raises(WorkloadError):
        merge_streams([(0, []), (0, [])])


def test_merge_digest_is_order_sensitive():
    forward = merge_streams([(0, [(1, "x")]), (1, [(1, "y")])])
    # Same event multiset, different order: a digest must tell them apart
    # where a sorted comparison would not.
    swapped = [forward[1], forward[0]]
    assert sorted(forward) == sorted(swapped)
    assert merge_digest(forward) != merge_digest(swapped)
