"""Tests for the discrete-event loop."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.loop import Simulator


class TestScheduling:
    def test_callbacks_run_in_time_order(self, sim):
        order = []
        sim.call_at(30, lambda: order.append("c"))
        sim.call_at(10, lambda: order.append("a"))
        sim.call_at(20, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_is_fifo(self, sim):
        order = []
        for index in range(5):
            sim.call_at(100, lambda i=index: order.append(i))
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    def test_clock_advances_to_callback_time(self, sim):
        seen = []
        sim.call_at(42, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [42]
        assert sim.now == 42

    def test_call_after_is_relative(self, sim):
        seen = []
        sim.call_at(10, lambda: sim.call_after(5, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [15]

    def test_scheduling_in_past_rejected(self, sim):
        sim.call_at(10, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(5, lambda: None)

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.call_after(-1, lambda: None)

    def test_cancel_prevents_execution(self, sim):
        ran = []
        handle = sim.call_at(10, lambda: ran.append(1))
        handle.cancel()
        sim.run()
        assert ran == []

    def test_pending_excludes_cancelled(self, sim):
        handle = sim.call_at(10, lambda: None)
        sim.call_at(20, lambda: None)
        assert sim.pending == 2
        handle.cancel()
        assert sim.pending == 1


class TestCancellationAccounting:
    def test_double_cancel_does_not_double_decrement(self, sim):
        handle = sim.call_at(10, lambda: None)
        sim.call_at(20, lambda: None)
        handle.cancel()
        handle.cancel()
        assert sim.pending == 1

    def test_cancel_after_execution_is_noop(self, sim):
        ran = []
        handle = sim.call_at(10, lambda: ran.append(1))
        sim.call_at(20, lambda: None)
        sim.run(until=15)
        assert ran == [1]
        assert sim.pending == 1
        handle.cancel()
        handle.cancel()
        assert sim.pending == 1

    def test_pending_tracks_push_pop_cancel(self, sim):
        handles = [sim.call_at(10 * i, lambda: None) for i in range(1, 6)]
        assert sim.pending == 5
        handles[0].cancel()
        assert sim.pending == 4
        assert sim.step()  # runs the entry at t=20
        assert sim.pending == 3
        handles[2].cancel()
        assert sim.pending == 2
        sim.run()
        assert sim.pending == 0

    def test_cancelled_property(self, sim):
        handle = sim.call_at(10, lambda: None)
        assert not handle.cancelled
        handle.cancel()
        assert handle.cancelled

    def test_mass_cancellation_compacts_heap(self, sim):
        keep = []
        handles = []
        for index in range(300):
            if index % 4 == 0:
                sim.call_at(1000 + index, lambda i=index: keep.append(i))
            else:
                handles.append(sim.call_at(1000 + index, lambda: None))
        for handle in handles:
            handle.cancel()
        # Cancelled entries outnumber live ones well past the compaction
        # threshold, so the heap must have shrunk to the live set.
        assert sim.pending == 75
        assert len(sim._heap) == 75
        sim.run()
        assert keep == list(range(0, 300, 4))  # FIFO order preserved


class TestRun:
    def test_run_until_stops_before_later_events(self, sim):
        ran = []
        sim.call_at(10, lambda: ran.append(10))
        sim.call_at(100, lambda: ran.append(100))
        sim.run(until=50)
        assert ran == [10]
        assert sim.now == 50
        sim.run()
        assert ran == [10, 100]

    def test_run_until_advances_clock_when_idle(self, sim):
        sim.run(until=1000)
        assert sim.now == 1000

    def test_stop_interrupts_run(self, sim):
        ran = []

        def first():
            ran.append(1)
            sim.stop()

        sim.call_at(10, first)
        sim.call_at(20, lambda: ran.append(2))
        sim.run()
        assert ran == [1]

    def test_step_runs_one_callback(self, sim):
        ran = []
        sim.call_at(10, lambda: ran.append(1))
        sim.call_at(20, lambda: ran.append(2))
        assert sim.step()
        assert ran == [1]
        assert sim.step()
        assert not sim.step()

    def test_reentrant_run_rejected(self, sim):
        def nested():
            with pytest.raises(SimulationError):
                sim.run()

        sim.call_at(10, nested)
        sim.run()

    def test_callbacks_can_schedule_more(self, sim):
        count = []

        def chain(n):
            count.append(n)
            if n < 5:
                sim.call_after(10, lambda: chain(n + 1))

        sim.call_at(0, lambda: chain(0))
        sim.run()
        assert count == [0, 1, 2, 3, 4, 5]
        assert sim.now == 50
