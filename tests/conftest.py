"""Shared fixtures: simulators, hosts, and connected socket pairs."""

from __future__ import annotations

import pytest

from repro.host.host import Host, HostCosts
from repro.net.nic import NicConfig
from repro.net.topology import PointToPoint
from repro.sim.loop import Simulator
from repro.sim.rng import RngRegistry
from repro.tcp.connect import connect_pair
from repro.tcp.socket import TcpConfig


@pytest.fixture
def sim():
    """A fresh simulator."""
    return Simulator()


@pytest.fixture
def make_sim():
    """Factory for fresh simulators — determinism tests run several."""
    return Simulator


@pytest.fixture
def rng():
    """A seeded RNG registry."""
    return RngRegistry(seed=42)


class PairFactory:
    """Builds two-host testbeds with connected sockets on demand."""

    def __init__(self, sim):
        self.sim = sim

    def build(
        self,
        nagle: bool = False,
        autocork: bool = False,
        costs: HostCosts | None = None,
        nic_config: NicConfig | None = None,
        tcp_kwargs: dict | None = None,
        loss_probability: float = 0.0,
        loss_rng=None,
        propagation_delay_ns: int = 5_000,
        fault_injector=None,
    ):
        """Create (client_host, server_host, client_sock, server_sock)."""
        client = Host(self.sim, "client", costs=costs, nic_config=nic_config)
        server = Host(self.sim, "server", costs=costs, nic_config=nic_config)
        PointToPoint.connect(
            self.sim,
            client.nic,
            server.nic,
            propagation_delay_ns=propagation_delay_ns,
            loss_probability=loss_probability,
            loss_rng=loss_rng,
            fault_injector=fault_injector,
        )
        config = TcpConfig(
            nagle=nagle, autocork=autocork, **(tcp_kwargs or {})
        )
        sock_a, sock_b = connect_pair(self.sim, client, server, config, config)
        return client, server, sock_a, sock_b


@pytest.fixture
def pair_factory(sim):
    """Factory fixture for connected host/socket pairs."""
    return PairFactory(sim)


def drain_reader(sim, sock, total_bytes: int, results: dict):
    """Spawn a drain-style reader that stops after ``total_bytes``."""

    def reader():
        got = 0
        messages = []
        while got < total_bytes:
            if sock.readable_bytes == 0:
                yield sock.wait_readable()
            nbytes, msgs = sock.read()
            got += nbytes
            messages.extend(msgs)
        results["bytes"] = got
        results["messages"] = messages
        results["time"] = sim.now
        return None

    return sim.spawn(reader(), name="drain_reader")
