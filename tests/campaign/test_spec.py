"""Spec parsing, validation, and the scenario override key space."""

from __future__ import annotations

import json

import pytest

from repro.campaign import (
    SCENARIOS,
    SPEC_SCHEMA,
    load_spec,
    parse_spec,
    validate_spec_document,
)
from repro.campaign.spec import _build_run
from repro.errors import CampaignSpecError
from repro.units import msecs


def minimal_doc(**extra) -> dict:
    doc = {
        "schema": SPEC_SCHEMA,
        "name": "t",
        "metrics": ["latency_mean_ns"],
    }
    doc.update(extra)
    return doc


class TestValidation:
    def test_minimal_doc_is_valid(self):
        assert validate_spec_document(minimal_doc()) == []

    def test_missing_required_fields(self):
        problems = validate_spec_document({"schema": SPEC_SCHEMA})
        assert any("name" in p for p in problems)
        assert any("metrics" in p for p in problems)

    def test_unknown_top_level_key_rejected(self):
        problems = validate_spec_document(minimal_doc(matirx=["baseline"]))
        assert any("matirx" in p for p in problems)

    def test_unknown_component_key_rejected(self):
        problems = validate_spec_document(minimal_doc(
            components=[{"name": "c", "enable": {}}],
        ))
        assert any("enable" in p for p in problems)

    def test_wrong_schema_string(self):
        problems = validate_spec_document(minimal_doc(schema="nope-v9"))
        assert any("repro-campaign-v1" in p for p in problems)

    def test_bool_is_not_an_int(self):
        problems = validate_spec_document(minimal_doc(repetitions=True))
        assert any("repetitions" in p for p in problems)

    def test_unknown_matrix_family(self):
        problems = validate_spec_document(minimal_doc(matrix=["all_off"]))
        assert any("all_off" in p for p in problems)

    def test_duplicate_component_names(self):
        problems = validate_spec_document(minimal_doc(
            components=[{"name": "c"}, {"name": "c"}],
        ))
        assert any("unique" in p for p in problems)

    def test_empty_sweep_values(self):
        problems = validate_spec_document(minimal_doc(
            sweeps=[{"field": "rate_per_sec", "values": []}],
        ))
        assert any("values" in p for p in problems)


class TestParse:
    def test_defaults_fill_in(self):
        spec = parse_spec(minimal_doc())
        assert spec.scenario == "run"
        assert spec.repetitions == 1
        assert spec.seed == 1
        assert spec.matrix == ("baseline", "all_on", "all_but_one",
                               "only_one")

    def test_all_problems_reported_at_once(self):
        with pytest.raises(CampaignSpecError) as err:
            parse_spec({"schema": SPEC_SCHEMA})
        assert "name" in str(err.value)
        assert "metrics" in str(err.value)

    def test_unknown_scenario(self):
        with pytest.raises(CampaignSpecError, match="unknown scenario"):
            parse_spec(minimal_doc(scenario="figure9"))

    def test_metric_must_fit_scenario(self):
        with pytest.raises(CampaignSpecError, match="aggregate_mean_ns"):
            parse_spec(minimal_doc(metrics=["aggregate_mean_ns"]))
        parse_spec(minimal_doc(
            scenario="fanin", metrics=["aggregate_mean_ns"],
        ))

    def test_repetitions_must_be_positive(self):
        with pytest.raises(CampaignSpecError, match="repetitions"):
            parse_spec(minimal_doc(repetitions=0))

    def test_digest_is_stable_across_key_order(self):
        doc = minimal_doc(base={"nagle": True, "rate_per_sec": 5000.0})
        reordered = json.loads(json.dumps(doc, sort_keys=True))
        assert parse_spec(doc).digest() == parse_spec(reordered).digest()

    def test_round_trip_through_document(self):
        spec = parse_spec(minimal_doc(
            components=[{"name": "c", "on": {"nagle": True}}],
            sweeps=[{"field": "rate_per_sec", "values": [1000.0]}],
        ))
        assert parse_spec(spec.to_document()) == spec


class TestOverrideKeySpace:
    def test_unknown_override_key_lists_valid_ones(self):
        with pytest.raises(CampaignSpecError) as err:
            _build_run({"ratee": 1000.0})
        assert "ratee" in str(err.value)
        assert "rate_per_sec" in str(err.value)

    def test_time_shorthand_converts_ms(self):
        (config,) = _build_run({"measure_ms": 25})
        assert config.measure_ns == msecs(25)

    def test_workload_shorthand(self):
        (config,) = _build_run({"set_ratio": 0.5, "value_bytes": 64})
        assert config.workload.set_ratio == 0.5
        assert config.workload.value_bytes == 64

    def test_fault_plan_by_name(self):
        (config,) = _build_run({"fault_plan": "bursty-loss"})
        assert config.fault_plan is not None
        assert config.fault_plan.name == "bursty-loss"

    def test_fault_intensity_zero_disables(self):
        (config,) = _build_run({
            "fault_plan": "bursty-loss", "fault_intensity": 0.0,
        })
        assert config.fault_plan is None

    def test_fault_intensity_order_does_not_matter(self):
        # dict insertion order must not affect resolution
        (a,) = _build_run(
            {"fault_intensity": 2.0, "fault_plan": "bursty-loss"}
        )
        (b,) = _build_run(
            {"fault_plan": "bursty-loss", "fault_intensity": 2.0}
        )
        assert a == b

    def test_fault_intensity_without_plan(self):
        with pytest.raises(CampaignSpecError, match="fault_plan"):
            _build_run({"fault_intensity": 2.0})

    def test_bad_value_type_is_wrapped(self):
        with pytest.raises(CampaignSpecError, match="invalid override"):
            _build_run({"measure_ms": "abc"})


class TestScenarioBuilds:
    def test_every_scenario_builds_its_defaults(self):
        for name, scenario in SCENARIOS.items():
            args = scenario.build({})
            assert isinstance(args, tuple), name

    def test_fig2_vm_override(self):
        args = SCENARIOS["fig2"].build({"vm": True})
        assert args[0].client_cpu_factor > 1.0

    def test_fanin_with_toggler_flag(self):
        config, with_toggler = SCENARIOS["fanin"].build(
            {"with_toggler": True, "clients": 2}
        )
        assert with_toggler is True
        assert config.clients == 2

    def test_timevarying_phase_plan(self):
        plan, base = SCENARIOS["timevarying"].build(
            {"low_rate": 1000.0, "high_rate": 9000.0, "phase_ms": 50}
        )
        assert plan.low_rate == 1000.0
        assert plan.phase_ns == msecs(50)


class TestLoadSpec:
    def test_json_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(minimal_doc()))
        assert load_spec(path).name == "t"

    def test_unreadable_file(self, tmp_path):
        with pytest.raises(CampaignSpecError, match="unreadable"):
            load_spec(tmp_path / "missing.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text("{nope")
        with pytest.raises(CampaignSpecError, match="invalid JSON"):
            load_spec(path)

    def test_non_mapping_document(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text("[1, 2]")
        with pytest.raises(CampaignSpecError, match="mapping"):
            load_spec(path)

    def test_yaml_file_when_available(self, tmp_path):
        pytest.importorskip("yaml")
        path = tmp_path / "spec.yaml"
        path.write_text(
            "schema: repro-campaign-v1\nname: t\n"
            "metrics: [latency_mean_ns]\n"
        )
        assert load_spec(path).name == "t"
