"""The campaign engine: dedupe, caching, determinism, accounting."""

from __future__ import annotations

import pytest

from repro.cache import ResultCache
from repro.campaign import (
    CampaignSpec,
    ComponentSpec,
    expand,
    run_spec,
)
from repro.errors import CampaignSpecError
from repro.obs.metrics import MetricsRegistry

TINY_BASE = {"measure_ms": 10, "warmup_ms": 5, "rate_per_sec": 5000.0}


def one_component_spec() -> CampaignSpec:
    # With one component, baseline == all_but_one and all_on ==
    # only_one, so 4 cells collapse to 2 unique configurations.
    return CampaignSpec(
        name="engine-t",
        base=dict(TINY_BASE),
        components=(
            ComponentSpec("nagle", on={"nagle": True},
                          off={"nagle": False}),
        ),
        metrics=("latency_mean_ns", "achieved_rate"),
    )


class TestDedupe:
    def test_identical_cells_execute_once(self):
        run = run_spec(one_component_spec())
        assert run.cells == 4
        assert run.executed == 2
        assert run.deduped == 2
        assert run.cached == 0
        assert len(run.values) == 4
        # the mirrored cells carry identical harvested values
        assert run.values[0] == run.values[2]  # baseline == all_but_one
        assert run.values[1] == run.values[3]  # all_on == only_one

    def test_describe_reports_accounting(self):
        run = run_spec(one_component_spec())
        assert "4 cell(s)" in run.describe()
        assert "2 executed" in run.describe()
        assert "2 deduped" in run.describe()

    def test_registry_counters(self):
        registry = MetricsRegistry()
        run_spec(one_component_spec(), metrics=registry)
        assert registry.counter("campaign.cells").value == 4
        assert registry.counter("campaign.unique_cells").value == 2
        assert registry.counter("campaign.executed").value == 2
        assert registry.counter("campaign.deduped").value == 2
        assert registry.counter("campaign.cached").value == 0


class TestCaching:
    def test_cached_rerun_executes_nothing(self, tmp_path):
        spec = one_component_spec()
        cache = ResultCache(tmp_path / "cache")
        first = run_spec(spec, checkpoint=cache)
        cache.close()
        cache = ResultCache(tmp_path / "cache")
        second = run_spec(spec, checkpoint=cache)
        cache.close()
        assert first.executed == 2 and first.cached == 0
        assert second.executed == 0 and second.cached == 4
        assert second.report.to_canonical() == first.report.to_canonical()

    def test_workers_do_not_change_report_bytes(self):
        spec = one_component_spec()
        serial = run_spec(spec, workers=1)
        parallel = run_spec(spec, workers=2)
        assert parallel.report.to_canonical() == serial.report.to_canonical()


class TestGuards:
    def test_watchdog_rejected_for_non_bench_scenario(self):
        from repro.supervise.watchdog import Watchdog

        spec = CampaignSpec(
            name="g", scenario="fanin", metrics=("aggregate_mean_ns",),
            base={"measure_ms": 10},
        )
        with pytest.raises(CampaignSpecError, match="watchdog"):
            run_spec(spec, watchdog=Watchdog(max_events=1000))

    def test_report_matches_matrix_shape(self):
        spec = one_component_spec()
        run = run_spec(spec)
        assert run.report.cells == len(expand(spec).cells)
        assert run.report.spec_digest == spec.digest()
        assert run.report.ranking == ("nagle",)
