"""The `repro campaign` subcommands and the top-level help epilog."""

from __future__ import annotations

import json

import pytest

from repro.cli import _COMMAND_SUMMARY, build_parser, main

EXAMPLE_JSON = "examples/campaign_ablation.json"


def spec_file(tmp_path, document: dict):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(document))
    return path


def tiny_doc(**extra) -> dict:
    doc = {
        "schema": "repro-campaign-v1",
        "name": "cli-t",
        "base": {"measure_ms": 10, "warmup_ms": 5, "rate_per_sec": 5000.0},
        "components": [
            {"name": "nagle", "on": {"nagle": True},
             "off": {"nagle": False}},
        ],
        "metrics": ["latency_mean_ns"],
    }
    doc.update(extra)
    return doc


class TestHelpEpilog:
    def test_every_subcommand_is_summarized(self):
        parser = build_parser()
        summarized = {name for name, _ in _COMMAND_SUMMARY}
        subcommands = set()
        for action in parser._actions:
            if hasattr(action, "choices") and action.choices:
                subcommands = set(action.choices)
        assert subcommands  # the parser does have subcommands
        assert subcommands == summarized
        for name in subcommands:
            assert name in parser.epilog

    def test_epilog_reaches_help_text(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        assert "commands:" in out
        assert "campaign" in out


class TestValidate:
    def test_example_specs_validate(self, capsys):
        for path in ("examples/campaign_ablation.yaml", EXAMPLE_JSON):
            if path.endswith(".yaml"):
                pytest.importorskip("yaml")
            assert main(["campaign", "validate", path]) == 0
            out = capsys.readouterr().out
            assert "repro-campaign-v1 OK" in out

    def test_invalid_spec_exits_nonzero(self, tmp_path, capsys):
        path = spec_file(tmp_path, {"schema": "repro-campaign-v1"})
        assert main(["campaign", "validate", str(path)]) == 1
        assert "name" in capsys.readouterr().err

    def test_importance_document_detected(self, tmp_path, capsys):
        run = main([
            "campaign", "run", str(spec_file(tmp_path, tiny_doc())),
            "--json", str(tmp_path / "imp.json"),
        ])
        assert run == 0
        capsys.readouterr()
        assert main([
            "campaign", "validate", str(tmp_path / "imp.json"),
        ]) == 0
        assert "repro-importance-v1 OK" in capsys.readouterr().out


class TestExpand:
    def test_expand_json_to_stdout(self, tmp_path, capsys):
        path = spec_file(tmp_path, tiny_doc())
        assert main(["campaign", "expand", str(path), "--json", "-"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["campaign"] == "cli-t"
        assert len(document["cells"]) == 4

    def test_expand_listing(self, tmp_path, capsys):
        path = spec_file(tmp_path, tiny_doc())
        assert main(["campaign", "expand", str(path)]) == 0
        out = capsys.readouterr().out
        assert "4 cell(s)" in out
        assert "all_but_one:nagle" in out


class TestRun:
    def test_run_prints_leaderboard_and_accounting(self, tmp_path, capsys):
        path = spec_file(tmp_path, tiny_doc())
        assert main(["campaign", "run", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Campaign importance: cli-t" in out
        assert "2 executed, 2 deduped" in out

    def test_run_json_matches_rerun(self, tmp_path, capsys):
        path = spec_file(tmp_path, tiny_doc())
        outputs = []
        for name in ("a.json", "b.json"):
            assert main([
                "campaign", "run", str(path),
                "--json", str(tmp_path / name),
            ]) == 0
            outputs.append((tmp_path / name).read_bytes())
        capsys.readouterr()
        assert outputs[0] == outputs[1]

    def test_measure_ms_flag_overrides_base(self, tmp_path, capsys):
        doc = tiny_doc()
        del doc["base"]["measure_ms"]
        path = spec_file(tmp_path, doc)
        assert main([
            "campaign", "run", str(path), "--measure-ms", "10",
        ]) == 0
        assert "4 cell(s)" in capsys.readouterr().out

    def test_spec_error_exits_one(self, tmp_path, capsys):
        path = spec_file(tmp_path, tiny_doc(metrics=["nope"]))
        assert main(["campaign", "run", str(path)]) == 1
        assert "nope" in capsys.readouterr().err
