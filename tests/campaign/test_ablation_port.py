"""The A7 port: the declarative engine reproduces the legacy grid."""

from __future__ import annotations

from dataclasses import replace

from repro.campaign import expand
from repro.experiments.ablations import (
    VARIANTS,
    run_variant_ablation,
    variant_ablation_spec,
)
from repro.experiments.fig4a import default_config
from repro.loadgen.lancet import run_benchmark
from repro.units import msecs

RATES = (8_000.0, 30_000.0)
MEASURE_NS = msecs(15)


def legacy_rows():
    """The pre-engine loop, verbatim: variant-major, then rate."""
    rows = []
    for variant, overrides in VARIANTS.items():
        for rate in RATES:
            config = replace(
                default_config(measure_ns=MEASURE_NS),
                rate_per_sec=rate,
                **overrides,
            )
            result = run_benchmark(config)
            rows.append((variant, rate, result.latency.mean_ns))
    return rows


class TestPortParity:
    def test_engine_matches_legacy_loop_exactly(self):
        ported = run_variant_ablation(
            rates=RATES, measure_ns=MEASURE_NS, workers=2
        )
        assert [
            (row.variant, row.rate, row.latency_ns) for row in ported.rows
        ] == legacy_rows()

    def test_spec_expansion_order_is_the_historical_order(self):
        matrix = expand(variant_ablation_spec(rates=RATES))
        assert [
            (cell.tweak, cell.sweep[0][1]) for cell in matrix.cells
        ] == [
            (variant, rate) for variant in VARIANTS for rate in RATES
        ]
