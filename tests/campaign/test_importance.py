"""Importance math, exact on hand-computed fixtures."""

from __future__ import annotations

import json

import pytest

from repro.campaign import (
    CampaignSpec,
    ComponentSpec,
    ImportanceReport,
    compute_importance,
    expand,
    validate_importance_document,
)


def two_component_spec(**overrides) -> CampaignSpec:
    fields = dict(
        name="imp",
        components=(
            ComponentSpec("a", on={"nagle": True}, off={"nagle": False}),
            ComponentSpec("b", on={"autocork": True},
                          off={"autocork": False}),
        ),
        matrix=("baseline", "all_on", "all_but_one", "only_one"),
        metrics=("m",),
    )
    fields.update(overrides)
    return CampaignSpec(**fields)


def values_for(matrix, table: dict) -> list[dict]:
    """Per-cell metric dicts keyed off each cell's variant label."""
    return [dict(table[cell.variant]) for cell in matrix.cells]


class TestExactMath:
    def test_hand_computed_fixture(self):
        spec = two_component_spec()
        matrix = expand(spec)
        scored = compute_importance(spec, matrix, values_for(matrix, {
            "baseline": {"m": 10.0},
            "all_on": {"m": 20.0},
            "all_but_one:a": {"m": 12.0},
            "all_but_one:b": {"m": 18.0},
            "only_one:a": {"m": 19.0},
            "only_one:b": {"m": 11.0},
        }))
        a = scored["components"][0]["metrics"]["m"]
        # removing a: 12 - 20; a alone: 19 - 10; norm = |baseline| = 10
        assert a["ablate_delta"] == pytest.approx(-8.0)
        assert a["solo_delta"] == pytest.approx(9.0)
        assert a["importance"] == pytest.approx((0.8 + 0.9) / 2)
        b = scored["components"][1]["metrics"]["m"]
        assert b["ablate_delta"] == pytest.approx(-2.0)
        assert b["solo_delta"] == pytest.approx(1.0)
        assert b["importance"] == pytest.approx((0.2 + 0.1) / 2)
        assert scored["components"][0]["score"] == pytest.approx(0.85)
        assert scored["ranking"] == ["a", "b"]

    def test_family_means_pool_repetitions(self):
        spec = two_component_spec(
            components=(
                ComponentSpec("a", on={"nagle": True}, off={}),
            ),
            matrix=("baseline", "only_one"),
            repetitions=2,
        )
        matrix = expand(spec)
        # rep0/rep1 pairs average: baseline -> 10, only_one:a -> 16
        per_variant = {"baseline": iter([8.0, 12.0]),
                       "only_one:a": iter([14.0, 18.0])}
        values = [
            {"m": next(per_variant[cell.variant])} for cell in matrix.cells
        ]
        scored = compute_importance(spec, matrix, values)
        entry = scored["components"][0]["metrics"]["m"]
        assert scored["baseline"]["m"] == pytest.approx(10.0)
        assert entry["solo_delta"] == pytest.approx(6.0)
        assert entry["importance"] == pytest.approx(0.6)

    def test_none_values_excluded_from_means(self):
        spec = two_component_spec(
            components=(ComponentSpec("a", on={"nagle": True}, off={}),),
            matrix=("baseline", "only_one"),
            repetitions=2,
        )
        matrix = expand(spec)
        seen: dict = {}
        values = []
        for cell in matrix.cells:
            first = seen.setdefault(cell.variant, True)
            seen[cell.variant] = False
            values.append({"m": 10.0 if first else None})
        scored = compute_importance(spec, matrix, values)
        assert scored["baseline"]["m"] == pytest.approx(10.0)

    def test_zero_baseline_uses_tiny_norm(self):
        spec = two_component_spec(
            components=(ComponentSpec("a", on={"nagle": True}, off={}),),
            matrix=("baseline", "only_one"),
        )
        matrix = expand(spec)
        scored = compute_importance(spec, matrix, values_for(matrix, {
            "baseline": {"m": 0.0},
            "only_one:a": {"m": 1e-3},
        }))
        entry = scored["components"][0]["metrics"]["m"]
        assert entry["importance"] == pytest.approx(1e-3 / 1e-9)


class TestAbsences:
    def test_missing_families_propagate_none(self):
        spec = two_component_spec(matrix=("all_on", "all_but_one"))
        matrix = expand(spec)
        scored = compute_importance(spec, matrix, values_for(matrix, {
            "all_on": {"m": 20.0},
            "all_but_one:a": {"m": 12.0},
            "all_but_one:b": {"m": 18.0},
        }))
        assert scored["baseline"]["m"] is None
        a = scored["components"][0]["metrics"]["m"]
        assert a["solo_delta"] is None
        # norm falls back to the all_on mean when baseline is absent
        assert a["importance"] == pytest.approx(8.0 / 20.0)

    def test_scoreless_components_rank_last(self):
        spec = two_component_spec(matrix=("baseline",))
        matrix = expand(spec)
        scored = compute_importance(
            spec, matrix, values_for(matrix, {"baseline": {"m": 10.0}})
        )
        assert all(c["score"] is None for c in scored["components"])
        # name breaks the tie among the scoreless
        assert scored["ranking"] == ["a", "b"]


class TestReport:
    def make_report(self) -> ImportanceReport:
        spec = two_component_spec()
        matrix = expand(spec)
        scored = compute_importance(spec, matrix, values_for(matrix, {
            "baseline": {"m": 10.0},
            "all_on": {"m": 20.0},
            "all_but_one:a": {"m": 12.0},
            "all_but_one:b": {"m": 18.0},
            "only_one:a": {"m": 19.0},
            "only_one:b": {"m": 11.0},
        }))
        return ImportanceReport(
            campaign=spec.name,
            scenario=spec.scenario,
            spec_digest=spec.digest(),
            seed=spec.seed,
            repetitions=spec.repetitions,
            cells=len(matrix.cells),
            metrics=spec.metrics,
            baseline=scored["baseline"],
            all_on=scored["all_on"],
            components=tuple(scored["components"]),
            ranking=tuple(scored["ranking"]),
        )

    def test_document_validates(self):
        report = self.make_report()
        assert validate_importance_document(report.to_document()) == []

    def test_canonical_bytes_are_stable(self):
        report = self.make_report()
        assert report.to_canonical() == report.to_canonical()
        assert report.to_canonical().endswith("\n")
        assert json.loads(report.to_canonical())["ranking"] == ["a", "b"]

    def test_render_leaderboard_order(self):
        rendered = self.make_report().render()
        assert rendered.index(" a ") < rendered.index(" b ")
        assert "0.8500" in rendered
        assert "baseline means" in rendered
