"""Canonical matrix expansion: ordering, merging, determinism."""

from __future__ import annotations

import random

import pytest

from repro.campaign import (
    CampaignSpec,
    ComponentSpec,
    SweepSpec,
    TweakSpec,
    expand,
    parse_spec,
)
from repro.errors import CampaignSpecError


def small_spec(**overrides) -> CampaignSpec:
    fields = dict(
        name="m",
        components=(
            ComponentSpec("a", on={"nagle": True}, off={"nagle": False}),
            ComponentSpec("b", on={"autocork": True},
                          off={"autocork": False}),
        ),
        metrics=("latency_mean_ns",),
    )
    fields.update(overrides)
    return CampaignSpec(**fields)


class TestOrdering:
    def test_canonical_cell_order(self):
        spec = small_spec(
            tweaks=(TweakSpec("t1"), TweakSpec("t2")),
            sweeps=(SweepSpec("rate_per_sec", (1.0, 2.0)),),
            matrix=("baseline", "all_but_one"),
            repetitions=2,
        )
        labels = [cell.label for cell in expand(spec).cells]
        expected = [
            f"{tweak}/{variant}/rate_per_sec={rate}/rep{rep}"
            for tweak in ("t1", "t2")
            for variant in ("baseline", "all_but_one:a", "all_but_one:b")
            for rate in (1.0, 2.0)
            for rep in (0, 1)
        ]
        assert labels == expected

    def test_indices_are_sequential(self):
        matrix = expand(small_spec())
        assert [cell.index for cell in matrix.cells] == list(
            range(len(matrix.cells))
        )

    def test_implicit_tweak_when_none_declared(self):
        matrix = expand(small_spec())
        assert {cell.tweak for cell in matrix.cells} == {""}
        assert matrix.cells[0].label.startswith("baseline/")

    def test_sweep_axis_nesting_outermost_first(self):
        spec = small_spec(
            components=(),
            matrix=("baseline",),
            sweeps=(
                SweepSpec("rate_per_sec", (1.0, 2.0)),
                SweepSpec("clients", (3, 4)),
            ),
        )
        points = [cell.sweep for cell in expand(spec).cells]
        assert points == [
            (("rate_per_sec", 1.0), ("clients", 3)),
            (("rate_per_sec", 1.0), ("clients", 4)),
            (("rate_per_sec", 2.0), ("clients", 3)),
            (("rate_per_sec", 2.0), ("clients", 4)),
        ]


class TestMerging:
    def test_override_precedence(self):
        # sweep > component > tweak > base > repetition seed
        spec = small_spec(
            base={"rate_per_sec": 1.0, "nagle": False},
            tweaks=(TweakSpec("t", {"rate_per_sec": 2.0}),),
            components=(
                ComponentSpec("a", on={"rate_per_sec": 3.0}, off={}),
            ),
            sweeps=(SweepSpec("rate_per_sec", (4.0,)),),
            matrix=("all_on",),
        )
        (cell,) = expand(spec).cells
        assert cell.overrides["rate_per_sec"] == 4.0

    def test_component_beats_base(self):
        spec = small_spec(base={"nagle": True}, matrix=("baseline",))
        (cell,) = expand(spec).cells
        assert cell.overrides["nagle"] is False

    def test_repetition_seeds(self):
        spec = small_spec(matrix=("baseline",), repetitions=3, seed=7)
        seeds = [cell.seed for cell in expand(spec).cells]
        assert seeds == [7, 8, 9]
        assert [c.overrides["seed"] for c in expand(spec).cells] == seeds

    def test_base_seed_override_wins(self):
        spec = small_spec(base={"seed": 42}, matrix=("baseline",))
        (cell,) = expand(spec).cells
        assert cell.seed == 42

    def test_component_states_recorded(self):
        spec = small_spec(matrix=("only_one",))
        states = {
            cell.variant: dict(cell.components)
            for cell in expand(spec).cells
        }
        assert states == {
            "only_one:a": {"a": True, "b": False},
            "only_one:b": {"a": False, "b": True},
        }


class TestErrors:
    def test_zero_cell_matrix_rejected(self):
        spec = small_spec(components=(), matrix=("all_but_one",))
        with pytest.raises(CampaignSpecError, match="zero cells"):
            expand(spec)


def _random_document(rng: random.Random) -> dict:
    keys = ["nagle", "autocork", "rate_per_sec", "seed"]
    def block():
        return {
            rng.choice(keys): rng.choice([True, False, 1.0, 2, 5])
            for _ in range(rng.randint(0, 2))
        }
    families = ["baseline", "all_on", "all_but_one", "only_one"]
    return {
        "schema": "repro-campaign-v1",
        "name": f"fuzz-{rng.randint(0, 999)}",
        "base": block(),
        "components": [
            {"name": f"c{i}", "on": block(), "off": block()}
            for i in range(rng.randint(0, 3))
        ],
        "tweaks": [
            {"name": f"t{i}", "overrides": block()}
            for i in range(rng.randint(0, 2))
        ],
        "sweeps": [
            {
                "field": field,
                "values": [rng.uniform(1, 9) for _ in range(
                    rng.randint(1, 3))],
            }
            for field in rng.sample(
                ["rate_per_sec", "value_bytes"], rng.randint(0, 2)
            )
        ],
        "matrix": ["baseline"] + rng.sample(
            families[1:], rng.randint(0, 3)
        ),
        "metrics": ["latency_mean_ns", "achieved_rate"],
        "repetitions": rng.randint(1, 3),
        "seed": rng.randint(1, 100),
    }


class TestDeterminism:
    @pytest.mark.parametrize("fuzz_seed", range(25))
    def test_expand_twice_is_byte_identical(self, fuzz_seed):
        document = _random_document(random.Random(fuzz_seed))
        spec = parse_spec(document)
        assert expand(spec).to_json() == expand(spec).to_json()

    @pytest.mark.parametrize("fuzz_seed", range(25))
    def test_document_round_trip_preserves_matrix(self, fuzz_seed):
        document = _random_document(random.Random(fuzz_seed))
        spec = parse_spec(document)
        again = parse_spec(spec.to_document())
        assert expand(again).to_json() == expand(spec).to_json()

    def test_digest_embedded_in_matrix(self):
        spec = small_spec()
        assert expand(spec).spec_digest == spec.digest()
