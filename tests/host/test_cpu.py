"""Tests for the CPU core executor."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.host.cpu import CpuCore
from repro.sim.process import Timeout


class TestCpuCoreExecution:
    def test_work_runs_after_cost(self, sim):
        core = CpuCore(sim)
        done = []
        core.execute(500, lambda: done.append(sim.now))
        sim.run()
        assert done == [500]

    def test_serial_fifo(self, sim):
        core = CpuCore(sim)
        done = []
        core.execute(100, lambda: done.append(("a", sim.now)))
        core.execute(200, lambda: done.append(("b", sim.now)))
        core.execute(50, lambda: done.append(("c", sim.now)))
        sim.run()
        assert done == [("a", 100), ("b", 300), ("c", 350)]

    def test_negative_cost_rejected(self, sim):
        core = CpuCore(sim)
        with pytest.raises(SimulationError):
            core.execute(-1, lambda: None)

    def test_zero_cost_allowed(self, sim):
        core = CpuCore(sim)
        done = []
        core.execute(0, lambda: done.append(sim.now))
        sim.run()
        assert done == [0]

    def test_submit_waitable(self, sim):
        core = CpuCore(sim)
        times = []

        def proc():
            yield core.submit(300)
            times.append(sim.now)

        sim.spawn(proc())
        sim.run()
        assert times == [300]

    def test_queue_depth(self, sim):
        core = CpuCore(sim)
        core.execute(100, lambda: None)
        core.execute(100, lambda: None)
        core.execute(100, lambda: None)
        assert core.queue_depth == 2  # one running, two queued


class TestUtilization:
    def test_fully_busy(self, sim):
        core = CpuCore(sim)
        core.execute(1000, lambda: None)
        sim.run()
        sim.call_at(1000, lambda: None)
        sim.run()
        assert core.utilization() == pytest.approx(1.0)

    def test_half_busy(self, sim):
        core = CpuCore(sim)
        core.execute(500, lambda: None)
        sim.run(until=1000)
        assert core.utilization() == pytest.approx(0.5)

    def test_window_reset(self, sim):
        core = CpuCore(sim)
        core.execute(1000, lambda: None)
        sim.run(until=1000)
        core.reset_window()
        sim.run(until=2000)
        assert core.utilization() == pytest.approx(0.0)

    def test_interleaved_with_process_work(self, sim):
        core = CpuCore(sim)

        def worker():
            for _ in range(5):
                yield core.submit(100)
                yield Timeout(100)

        sim.spawn(worker())
        sim.run(until=1000)
        assert core.utilization() == pytest.approx(0.5)
        assert core.work_items == 5
