"""Tests for host composition, costs, and softirq charging."""

from __future__ import annotations

import pytest

from repro.errors import NetworkError
from repro.host.host import Host, HostCosts
from repro.net.packet import Packet
from repro.tcp.segment import Segment


class TestHostCosts:
    def test_scaled_multiplies_everything(self):
        base = HostCosts()
        scaled = base.scaled(2.0)
        assert scaled.rx_delivery_ns == 2 * base.rx_delivery_ns
        assert scaled.rx_ack_ns == 2 * base.rx_ack_ns
        assert scaled.tx_syscall_ns == 2 * base.tx_syscall_ns
        assert scaled.wakeup_ns == 2 * base.wakeup_ns
        assert scaled.rx_byte_ns == pytest.approx(2 * base.rx_byte_ns)

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            HostCosts().scaled(0)

    def test_send_cost(self, sim):
        host = Host(sim, "h", costs=HostCosts(tx_syscall_ns=1000, tx_byte_ns=0.5))
        assert host.send_cost_ns(100) == 1000 + 50


class TestDemux:
    def test_unknown_connection_raises(self, sim):
        host = Host(sim, "h")
        segment = Segment(conn_id=99, src="x", dst="h", seq=0,
                          payload_len=10, ack=0, wnd=0)
        with pytest.raises(NetworkError):
            host._demux(Packet(src="x", dst="h", payload_bytes=10,
                               payload=segment))

    def test_double_registration_rejected(self, sim):
        host = Host(sim, "h")
        host.register_socket(1, object())
        with pytest.raises(NetworkError):
            host.register_socket(1, object())


class TestSoftirqCharging:
    def test_data_delivery_charges_delivery_cost(self, sim):
        costs = HostCosts(rx_irq_ns=100, rx_delivery_ns=1000, rx_ack_ns=10,
                          rx_wire_packet_ns=50, rx_byte_ns=0.0)
        host = Host(sim, "h", costs=costs)
        delivered = []
        host.register_socket(1, type("S", (), {
            "segment_arrived": lambda self, seg: delivered.append(sim.now)
        })())
        segment = Segment(conn_id=1, src="x", dst="h", seq=0,
                          payload_len=500, ack=0, wnd=0)
        host.softirq.on_interrupt([
            Packet(src="x", dst="h", payload_bytes=500, payload=segment)
        ])
        sim.run()
        # irq (100) + delivery (1000) + 1 wire packet (50).
        assert delivered == [1150]
        assert host.net_core.busy_ns == 1150

    def test_pure_ack_charges_ack_cost(self, sim):
        costs = HostCosts(rx_irq_ns=0, rx_delivery_ns=1000, rx_ack_ns=10,
                          rx_wire_packet_ns=0, rx_byte_ns=0.0)
        host = Host(sim, "h", costs=costs)
        delivered = []
        host.register_socket(1, type("S", (), {
            "segment_arrived": lambda self, seg: delivered.append(sim.now)
        })())
        segment = Segment(conn_id=1, src="x", dst="h", seq=0,
                          payload_len=0, ack=100, wnd=0)
        host.softirq.on_interrupt([
            Packet(src="x", dst="h", payload_bytes=0, payload=segment)
        ])
        sim.run()
        assert delivered == [10]

    def test_gro_merged_charges_per_wire_packet(self, sim):
        costs = HostCosts(rx_irq_ns=0, rx_delivery_ns=1000, rx_ack_ns=0,
                          rx_wire_packet_ns=100, rx_byte_ns=0.0)
        host = Host(sim, "h", costs=costs)
        delivered = []
        host.register_socket(1, type("S", (), {
            "segment_arrived": lambda self, seg: delivered.append(sim.now)
        })())
        segment = Segment(conn_id=1, src="x", dst="h", seq=0,
                          payload_len=4344, ack=0, wnd=0, wire_count=3)
        host.softirq.on_interrupt([
            Packet(src="x", dst="h", payload_bytes=4344, payload=segment,
                   wire_count=3)
        ])
        sim.run()
        assert delivered == [1000 + 300]
        assert host.softirq.wire_packets == 3
