"""Smoke tests for the chaos driver (reduced scale).

The acceptance properties live here: fixed (seed, plan) is fully
deterministic, the estimator never emits a negative latency, and the
toggler never changes mode faster than its freeze window.
"""

from __future__ import annotations

import json
from dataclasses import asdict

import pytest

from repro.experiments.faults import CHAOS_TOGGLER, run_faults
from repro.units import msecs

pytestmark = pytest.mark.slow

SWEEP_ARGS = dict(
    plan_name="exchange-chaos",
    intensities=(0.0, 1.0),
    rate=8_000.0,
    measure_ns=msecs(40),
    seed=2,
)


class TestChaosDriver:
    @pytest.fixture(scope="class")
    def result(self):
        return run_faults(**SWEEP_ARGS)

    def test_sweep_shape(self, result):
        assert [point.intensity for point in result.points] == [0.0, 1.0]
        assert result.plan == "exchange-chaos"
        assert result.freeze_ticks == CHAOS_TOGGLER.freeze_ticks

    def test_intensity_zero_is_fault_free(self, result):
        baseline = result.points[0]
        assert baseline.fault_summary is None
        assert baseline.states_rejected == 0

    def test_faults_actually_injected(self, result):
        chaotic = result.points[1]
        assert chaotic.fault_summary is not None
        exchange_counts = chaotic.fault_summary["exchange"]
        assert sum(
            counter["dropped"] + counter["corrupted"] + counter["staled"]
            for counter in exchange_counts.values()
        ) > 0

    def test_estimator_never_goes_negative(self, result):
        for point in result.points:
            assert point.negative_estimates == 0
            assert point.estimate_samples > 0
            assert point.estimated_ns is None or point.estimated_ns >= 0

    def test_toggler_respects_freeze_window(self, result):
        for point in result.points:
            if point.min_toggle_gap_ticks is not None:
                assert point.min_toggle_gap_ticks >= result.freeze_ticks

    def test_render_and_json(self, result, tmp_path):
        text = result.render()
        assert "exchange-chaos" in text
        payload = result.to_json()
        assert payload["schema"] == "repro-robustness-v1"
        assert len(payload["points"]) == 2
        target = tmp_path / "nested" / "robustness.json"
        result.write_json(target)
        assert json.loads(target.read_text()) == payload

    def test_fixed_seed_and_plan_is_deterministic(self, result):
        again = run_faults(**SWEEP_ARGS)
        assert [asdict(point) for point in again.points] == [
            asdict(point) for point in result.points
        ]
