"""Smoke tests for the time-varying-load experiment (A8)."""

from __future__ import annotations

import pytest

from repro.experiments.timevarying import PhasePlan, run_timevarying
from repro.units import msecs

import pytest as _pytest

pytestmark = _pytest.mark.slow


class TestPhasePlan:
    def test_phase_layout(self):
        plan = PhasePlan(low_rate=1000, high_rate=2000, phase_ns=msecs(10))
        assert [name for name, _ in plan.phases] == ["low-1", "high", "low-2"]
        assert plan.total_ns == 3 * msecs(10)


class TestTimeVarying:
    @pytest.fixture(scope="class")
    def result(self):
        return run_timevarying(PhasePlan(phase_ns=msecs(120)))

    def test_all_policies_present(self, result):
        assert {p.policy for p in result.policies} == {
            "static-off", "static-on", "dynamic",
        }

    def test_static_off_collapses_at_high(self, result):
        off = result.policy("static-off").phase_latency_ns
        on = result.policy("static-on").phase_latency_ns
        assert off["high"] > 5 * on["high"]

    def test_dynamic_tracks_phases(self, result):
        off = result.policy("static-off").phase_latency_ns
        dynamic = result.policy("dynamic").phase_latency_ns
        assert dynamic["high"] < 0.5 * off["high"]
        assert result.policy("dynamic").toggles >= 1

    def test_render(self, result):
        text = result.render()
        assert "A8" in text
        assert "dynamic" in text
