"""Smoke tests for the shared-bottleneck experiment.

The exhaustive (shards × workers) byte-identity matrix lives in the
golden-digest suite (``tests/perf/test_equivalence.py``); these tests
check the physics and the in-process partition invariance cheaply.
"""

from __future__ import annotations

import pytest

from repro.experiments.bottleneck import (
    BottleneckConfig,
    run_shared_bottleneck,
)
from repro.units import msecs

pytestmark = pytest.mark.slow


def small_config(**overrides) -> BottleneckConfig:
    defaults = dict(warmup_ns=msecs(10), measure_ns=msecs(30))
    defaults.update(overrides)
    return BottleneckConfig(**defaults)


def test_all_flows_served_and_link_contended():
    result = run_shared_bottleneck(small_config())
    assert len(result.per_flow_mean_ns) == result.config.flows
    assert all(mean > 0 for mean in result.per_flow_mean_ns)
    assert result.merged_events > 0
    # The bottleneck actually carries the traffic and actually queues.
    assert 0 < result.bottleneck_utilization <= 1.0
    assert result.bottleneck_peak_queue > 0
    assert result.bottleneck_packets > 0
    # Flows start in lockstep with the same per-flow rate: contention at
    # the shared link must show in every flow, so means stay comparable.
    low, high = min(result.per_flow_mean_ns), max(result.per_flow_mean_ns)
    assert high < 2 * low


def test_windows_follow_the_lookahead():
    result = run_shared_bottleneck(small_config())
    config = result.config
    horizon = config.horizon_ns
    lookahead = config.propagation_delay_ns
    expected = horizon // lookahead + (1 if horizon % lookahead else 0)
    assert result.windows == expected
    assert result.exchanged_events > 0


def test_sharded_is_byte_identical_in_process():
    config = small_config()
    reference = run_shared_bottleneck(config).to_json()
    for shards in (2, 4):
        assert run_shared_bottleneck(
            config, shards=shards
        ).to_json() == reference


def test_contention_raises_latency_over_a_lone_flow():
    # One flow at 1/4 the aggregate rate sees an idle bottleneck; four
    # flows at the full rate queue behind each other.
    lone = run_shared_bottleneck(small_config(
        flows=1, total_rate_per_sec=2_000.0
    ))
    contended = run_shared_bottleneck(small_config())
    assert contended.aggregate_mean_ns > lone.aggregate_mean_ns


def test_render():
    text = run_shared_bottleneck(small_config()).render()
    assert "Shared bottleneck" in text
    assert "aggregate" in text
