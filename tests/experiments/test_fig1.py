"""Tests for the Figure 1 experiment driver."""

from __future__ import annotations

from repro.experiments import run_fig1


class TestFig1:
    def test_paper_verdicts(self):
        result = run_fig1()
        verdicts = {
            row.c: (row.latency_verdict, row.throughput_verdict)
            for row in result.rows
        }
        assert verdicts[1.0] == ("improves", "improves")
        assert verdicts[3.0] == ("degrades", "improves")
        assert verdicts[5.0] == ("degrades", "degrades")

    def test_render_contains_all_panels(self):
        text = run_fig1().render()
        assert "Figure 1" in text
        assert text.count("improves") + text.count("degrades") == 6

    def test_custom_costs(self):
        result = run_fig1(cs=(0.5, 10.0))
        assert len(result.rows) == 2
