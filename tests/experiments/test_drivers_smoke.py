"""Smoke tests for the heavier experiment drivers at reduced scale.

The full-scale versions run under ``benchmarks/``; these verify the
drivers' mechanics (sweep plumbing, headline math, rendering) on small
grids so the unit suite stays fast.
"""

from __future__ import annotations

import pytest

from repro.experiments.ablations import (
    run_exchange_ablation,
    run_units_ablation,
)
from repro.experiments.fig2 import fig2_config, run_fig2
from repro.experiments.fig4a import default_config, run_fig4a
from repro.experiments.fig4b import mixed_config, run_fig4b
from repro.loadgen.lancet import run_benchmark
from repro.units import msecs

import pytest as _pytest

pytestmark = _pytest.mark.slow

SMALL_RATES = [10_000.0, 35_000.0, 50_000.0]


class TestFig4aDriver:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig4a(
            rates=SMALL_RATES, base=default_config(measure_ns=msecs(60))
        )

    def test_crossover_found(self, result):
        assert result.cutoff_rate is not None
        assert 10_000 < result.cutoff_rate < 50_000

    def test_extension_factor_positive(self, result):
        assert result.extension_factor > 1.2

    def test_estimated_cutoff_close_to_measured(self, result):
        assert result.estimated_cutoff_rate is not None
        assert result.estimated_cutoff_rate == pytest.approx(
            result.cutoff_rate, rel=0.4
        )

    def test_render(self, result):
        text = result.render()
        assert "Figure 4a" in text
        assert "extension" in text


class TestFig4bDriver:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig4b(
            rates=SMALL_RATES, base=mixed_config()
        )

    def test_byte_estimates_worse_than_hints(self, result):
        assert result.mean_abs_error_fraction > result.hint_mean_abs_error_fraction

    def test_render(self, result):
        text = result.render()
        assert "Figure 4b" in text


class TestFig2Driver:
    def test_single_cell_runs(self):
        result = run_benchmark(fig2_config(vm=False, nagle=False, seed=1,
                                           measure_ns=msecs(60)))
        assert result.latency.count > 500

    def test_full_grid_verdicts(self):
        result = run_fig2(seeds=(1,), measure_ns=msecs(100))
        assert result.client_cpu_ratio > 1.5
        assert 0.7 < result.server_cpu_ratio < 1.3
        assert result.nagle_helps_bare
        assert not result.nagle_helps_vm
        assert "Figure 2" in result.render()


class TestAblationDrivers:
    def test_units_ablation_hints_most_accurate_on_mixed(self):
        result = run_units_ablation(rate=30_000.0, measure_ns=msecs(60))
        errors = {
            (row.workload, row.unit): row.error_fraction for row in result.rows
        }
        assert errors[("95:5 SET:GET", "hints")] < errors[("95:5 SET:GET", "bytes")]
        assert "A1" in result.render()

    def test_exchange_ablation_period_insensitive(self):
        result = run_exchange_ablation(
            periods_ns=(msecs(2), msecs(40)), rate=30_000.0,
            measure_ns=msecs(100),
        )
        short_row, long_row = result.rows
        assert short_row.states_sent > long_row.states_sent
        # Little's law accuracy does not collapse at the long period.
        assert long_row.error_fraction is not None
        assert long_row.error_fraction < 0.6
        assert "A3" in result.render()
