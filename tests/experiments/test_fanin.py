"""Smoke tests for the fan-in experiment (A10)."""

from __future__ import annotations

import pytest

from repro.experiments.fanin import FaninConfig, build_fanin, run_fanin
from repro.units import msecs

import pytest as _pytest

pytestmark = _pytest.mark.slow


def small_config(**overrides) -> FaninConfig:
    defaults = dict(
        clients=3,
        total_rate_per_sec=15_000.0,
        warmup_ns=msecs(10),
        measure_ns=msecs(60),
    )
    defaults.update(overrides)
    return FaninConfig(**defaults)


class TestBuildFanin:
    def test_topology_wiring(self, ):
        bed = build_fanin(small_config())
        assert len(bed.client_hosts) == 3
        assert len(bed.server.sockets) == 3
        # Every connection reaches the same server host.
        for sock in bed.server_socks:
            assert sock.host is bed.server_host


class TestRunFanin:
    def test_all_clients_served(self):
        result = run_fanin(small_config())
        assert len(result.per_client_mean_ns) == 3
        assert all(mean > 0 for mean in result.per_client_mean_ns)

    def test_estimates_track_aggregate_below_saturation(self):
        result = run_fanin(small_config())
        assert result.averaged_estimate_ns is not None
        assert result.averaged_estimate_ns == pytest.approx(
            result.aggregate_mean_ns, rel=0.5
        )

    def test_nagle_comparison_holds_under_fanin(self):
        high = small_config(total_rate_per_sec=48_000.0)
        off = run_fanin(high)
        on = run_fanin(FaninConfig(
            clients=3, total_rate_per_sec=48_000.0, nagle=True,
            warmup_ns=msecs(10), measure_ns=msecs(60),
        ))
        assert on.aggregate_mean_ns < off.aggregate_mean_ns

    def test_render(self):
        text = run_fanin(small_config()).render()
        assert "A10" in text
        assert "aggregate" in text
