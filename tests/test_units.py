"""Tests for unit conversions."""

from __future__ import annotations

import pytest

from repro import units


class TestTime:
    def test_constants(self):
        assert units.USEC == 1_000
        assert units.MSEC == 1_000_000
        assert units.SEC == 1_000_000_000

    def test_conversions_roundtrip(self):
        assert units.usecs(1.5) == 1500
        assert units.msecs(2) == 2_000_000
        assert units.secs(0.001) == 1_000_000
        assert units.to_usecs(1500) == 1.5
        assert units.to_msecs(2_000_000) == 2.0
        assert units.to_secs(500_000_000) == 0.5


class TestRates:
    def test_interarrival(self):
        assert units.interarrival_ns(1000.0) == pytest.approx(1_000_000)
        with pytest.raises(ValueError):
            units.interarrival_ns(0)

    def test_serialization_delay(self):
        # 1000 bytes at 8 Gbps = 1000 ns.
        assert units.serialization_delay_ns(1000, 8e9) == 1000
        with pytest.raises(ValueError):
            units.serialization_delay_ns(1, 0)

    def test_rate_per_sec(self):
        assert units.rate_per_sec(500, units.SEC) == 500
        with pytest.raises(ValueError):
            units.rate_per_sec(1, 0)
