"""Tests for the Figure 1 closed-form model — the paper's exact numbers."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.analytic.batching_model import (
    ScenarioParams,
    compare,
    simulate_batched,
    simulate_unbatched,
)
from repro.errors import WorkloadError


class TestPaperNumbers:
    """n=3, alpha=2, beta=4, c in {1, 3, 5} (paper Figure 1a/b/c)."""

    def test_figure_1a_c1_batching_improves_both(self):
        outcome = compare(ScenarioParams(c=1))
        assert outcome["batched"].completion_times == (11, 12, 13)
        assert outcome["unbatched"].completion_times == (7, 13, 19)
        assert outcome["batching_improves_latency"]
        assert outcome["batching_improves_throughput"]

    def test_figure_1b_c5_batching_degrades_both(self):
        outcome = compare(ScenarioParams(c=5))
        assert outcome["batched"].completion_times == (15, 20, 25)
        assert outcome["unbatched"].completion_times == (11, 17, 23)
        assert not outcome["batching_improves_latency"]
        assert not outcome["batching_improves_throughput"]

    def test_figure_1c_c3_mixed_outcome(self):
        outcome = compare(ScenarioParams(c=3))
        assert outcome["batched"].completion_times == (13, 16, 19)
        assert outcome["unbatched"].completion_times == (9, 15, 21)
        assert not outcome["batching_improves_latency"]
        assert outcome["batching_improves_throughput"]

    def test_server_times_match_paper_totals(self):
        """Batched server work n*alpha+beta=10; unbatched n*(alpha+beta)=18."""
        params = ScenarioParams()
        batched = simulate_batched(params)
        assert min(batched.completion_times) == 10 + params.c
        unbatched = simulate_unbatched(params)
        # With c=1 < alpha+beta the server paces the pipeline.
        assert max(unbatched.completion_times) == 3 * 6 + 1


class TestModelProperties:
    @given(
        st.integers(1, 20),
        st.floats(0.1, 50),
        st.floats(0.0, 50),
        st.floats(0.0, 50),
    )
    def test_completions_monotone(self, n, alpha, beta, c):
        params = ScenarioParams(n=n, alpha=alpha, beta=beta, c=c)
        for outcome in (simulate_batched(params), simulate_unbatched(params)):
            times = outcome.completion_times
            assert all(a <= b for a, b in zip(times, times[1:]))

    @given(st.integers(1, 20), st.floats(0.1, 50), st.floats(0.1, 50))
    def test_zero_client_cost_makes_batching_win(self, n, alpha, beta):
        """With c=0 and n>1, batching strictly wins on throughput
        (amortizes beta) and can't lose on the pipeline."""
        if n == 1:
            return
        outcome = compare(ScenarioParams(n=n, alpha=alpha, beta=beta, c=0.0))
        assert outcome["batching_improves_throughput"]

    @given(st.floats(0.1, 100))
    def test_n1_batching_is_identical(self, c):
        """A batch of one is no batch at all."""
        params = ScenarioParams(n=1, c=c)
        batched = simulate_batched(params)
        unbatched = simulate_unbatched(params)
        assert batched.completion_times == unbatched.completion_times

    @given(
        st.integers(2, 15),
        st.floats(0.1, 20),
        st.floats(0.1, 20),
        st.floats(0.0, 100),
    )
    def test_large_c_eventually_favors_no_batching(self, n, alpha, beta, c):
        """Once the client is the bottleneck (c >= alpha+beta), the
        batched pipeline finishes no earlier than the unbatched one."""
        if c < alpha + beta:
            return
        params = ScenarioParams(n=n, alpha=alpha, beta=beta, c=c)
        batched = simulate_batched(params)
        unbatched = simulate_unbatched(params)
        assert max(batched.completion_times) >= max(unbatched.completion_times)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            ScenarioParams(n=0).validate()
        with pytest.raises(WorkloadError):
            ScenarioParams(alpha=-1).validate()
