"""Pooled-mode resilience: crashes, hangs, and the determinism guarantee.

These tests inject real faults — SIGKILLed workers, hung jobs — into a
live process pool and assert the supervisor recovers *and* that the
recovered campaign's output is byte-identical to a fault-free serial
run.  They are the regression net for the paper-reproduction invariant:
supervision must never change results, only availability.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass

import pytest

from repro.loadgen.lancet import BenchConfig, run_benchmark
from repro.parallel import ParallelRunner, run_campaign
from repro.supervise import (
    KIND_TIMEOUT,
    SupervisePolicy,
    Supervisor,
)
from repro.units import msecs

#: Backoff-free, fast-polling policy so fault tests stay quick.
FAST = SupervisePolicy(
    backoff_base_s=0.0, backoff_max_s=0.0, poll_interval_s=0.02
)


def _crash_once(payload):
    """SIGKILL the worker on the first attempt; succeed on the second."""
    marker, x = payload
    if not marker.exists():
        marker.write_text("crashing")
        os.kill(os.getpid(), signal.SIGKILL)
    return x + 100


def _hang_forever(x):
    time.sleep(120)
    return x  # pragma: no cover


def _hang_once(payload):
    """Hang past any timeout on the first attempt, return on the second."""
    marker, x = payload
    if not marker.exists():
        marker.write_text("hanging")
        time.sleep(120)
    return x + 200


@dataclass(frozen=True)
class _CrashOnceTweak:
    """A picklable tweak that SIGKILLs the worker once per config.

    The marker is keyed by the config's seed, so each job crashes on
    exactly its first attempt and runs untouched on the retry — the
    retried run must then be byte-identical to a never-crashed one.
    """

    marker_dir: str

    def __call__(self, bed) -> None:
        marker = os.path.join(
            self.marker_dir, f"seed-{bed.config.seed}"
        )
        if not os.path.exists(marker):
            with open(marker, "w") as f:
                f.write("crashing")
            os.kill(os.getpid(), signal.SIGKILL)


class TestCrashRecovery:
    def test_killed_workers_recovered_on_fresh_pool(self, tmp_path):
        supervisor = Supervisor(workers=2, policy=FAST)
        payloads = [(tmp_path / f"m{i}", i) for i in range(3)]
        outcomes = supervisor.run(_crash_once, payloads)
        assert [o.ok for o in outcomes] == [True, True, True]
        assert [o.result for o in outcomes] == [100, 101, 102]
        counters = supervisor.metrics.snapshot()["counters"]
        assert counters["supervise.crashes"] >= 3
        assert counters["supervise.pool_restarts"] >= 1
        assert counters.get("supervise.quarantined", 0) == 0


class TestTimeouts:
    def test_hung_jobs_killed_and_retried(self, tmp_path):
        policy = SupervisePolicy(
            job_timeout_s=0.5, poll_interval_s=0.02,
            backoff_base_s=0.0, backoff_max_s=0.0,
        )
        # Two jobs so the run is pooled: a single job drops to serial
        # mode, where there is no second process to enforce a timeout.
        supervisor = Supervisor(workers=2, policy=policy)
        outcomes = supervisor.run(
            _hang_once, [(tmp_path / "m0", 5), (tmp_path / "m1", 6)]
        )
        assert [o.ok for o in outcomes] == [True, True]
        assert [o.result for o in outcomes] == [205, 206]
        counters = supervisor.metrics.snapshot()["counters"]
        assert counters["supervise.timeouts"] == 2

    def test_always_hung_job_quarantined_as_timeout(self):
        policy = SupervisePolicy(
            max_attempts=2, job_timeout_s=0.3, poll_interval_s=0.02,
            backoff_base_s=0.0, backoff_max_s=0.0,
        )
        supervisor = Supervisor(workers=2, policy=policy)
        outcomes = supervisor.run(_hang_forever, [1, 2])
        assert all(not o.ok for o in outcomes)
        assert all(o.kind == KIND_TIMEOUT for o in outcomes)
        assert all(o.attempts == 2 for o in outcomes)
        assert "wall-clock budget" in outcomes[0].message


class TestDeterminismUnderFaults:
    """The headline invariant: faults never change campaign output."""

    def test_crash_injected_campaign_matches_fault_free_serial(self, tmp_path):
        configs = [
            BenchConfig(
                rate_per_sec=9_000.0, warmup_ns=msecs(2),
                measure_ns=msecs(5), seed=seed,
            )
            for seed in (1, 2)
        ]
        serial = [run_benchmark(config) for config in configs]

        tweak = _CrashOnceTweak(str(tmp_path))
        faulted = run_campaign(
            configs, tweak=tweak, workers=2,
            policy=SupervisePolicy(
                backoff_base_s=0.0, backoff_max_s=0.0, poll_interval_s=0.02
            ),
        )
        # Every config crashed its worker exactly once...
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "seed-1", "seed-2"
        ]
        # ...and the recovered output is identical to the fault-free run.
        assert faulted == serial

    def test_resumed_campaign_matches_uninterrupted(self, tmp_path):
        configs = [
            BenchConfig(
                rate_per_sec=9_000.0, warmup_ns=msecs(2),
                measure_ns=msecs(5), seed=seed,
            )
            for seed in (1, 2, 3)
        ]
        uninterrupted = run_campaign(configs)

        # First campaign completes only a prefix (simulating a kill by
        # slicing), the second resumes the rest from the same directory.
        ckpt = tmp_path / "ckpt"
        run_campaign(configs[:1], checkpoint=ckpt)
        resumed = run_campaign(configs, checkpoint=ckpt)
        assert resumed == uninterrupted

        runner = ParallelRunner(workers=1)
        outcomes = runner.run_many_outcomes(configs, checkpoint=ckpt)
        assert all(o.from_checkpoint for o in outcomes)
