"""Tests for the supervision policy: validation and backoff."""

from __future__ import annotations

import pytest

from repro.errors import SuperviseError
from repro.supervise import SupervisePolicy


class TestValidation:
    def test_defaults_validate(self):
        SupervisePolicy().validate()

    @pytest.mark.parametrize("kwargs", [
        {"max_attempts": 0},
        {"backoff_base_s": -0.1},
        {"backoff_max_s": -1.0},
        {"backoff_factor": 0.5},
        {"job_timeout_s": 0},
        {"job_timeout_s": -2.0},
        {"poll_interval_s": 0},
        {"crash_slack": -1},
    ])
    def test_nonsense_rejected(self, kwargs):
        with pytest.raises(SuperviseError):
            SupervisePolicy(**kwargs).validate()


class TestBackoff:
    def test_deterministic_exponential_series(self):
        policy = SupervisePolicy(
            backoff_base_s=0.1, backoff_factor=2.0, backoff_max_s=1.0
        )
        series = [policy.backoff_s(n) for n in range(1, 6)]
        assert series == [0.1, 0.2, 0.4, 0.8, 1.0]  # capped at max
        # No jitter: the same failure count always maps to the same delay.
        assert policy.backoff_s(3) == policy.backoff_s(3)

    def test_zero_failures_no_delay(self):
        assert SupervisePolicy().backoff_s(0) == 0.0

    def test_crash_slack_extends_strikes(self):
        policy = SupervisePolicy(max_attempts=3, crash_slack=2)
        assert policy.max_crash_strikes == 5
