"""Tests for content-addressed job keys and the checkpoint shard store."""

from __future__ import annotations

import json

import pytest

from repro.errors import SuperviseError
from repro.loadgen.lancet import BenchConfig
from repro.supervise import (
    CHECKPOINT_SCHEMA,
    CheckpointStore,
    JobFailure,
    derive_keys,
    job_key,
    volatile_key,
)
from repro.units import msecs


def _module_level_fn(x):
    return x


class TestJobKey:
    def test_equal_configs_share_a_key(self):
        a = BenchConfig(rate_per_sec=10_000.0, measure_ns=msecs(5))
        b = BenchConfig(rate_per_sec=10_000.0, measure_ns=msecs(5))
        assert a is not b
        assert job_key(a) == job_key(b)

    def test_any_field_change_changes_the_key(self):
        base = BenchConfig(rate_per_sec=10_000.0)
        assert job_key(base) != job_key(BenchConfig(rate_per_sec=10_001.0))
        assert job_key(base) != job_key(BenchConfig(rate_per_sec=10_000.0, seed=2))

    def test_key_is_a_sha256_digest(self):
        key = job_key(BenchConfig(rate_per_sec=10_000.0))
        assert len(key) == 64
        int(key, 16)  # hex

    def test_module_level_callables_key_by_import_path(self):
        key_a = job_key((_module_level_fn, (1,)))
        key_b = job_key((_module_level_fn, (1,)))
        assert key_a == key_b
        assert key_a != job_key((_module_level_fn, (2,)))

    def test_closures_are_not_content_addressable(self):
        with pytest.raises(SuperviseError):
            job_key((lambda x: x, (1,)))

    def test_derive_keys_falls_back_to_volatile_without_store(self):
        payloads = [(_module_level_fn, (1,)), (lambda x: x, (2,))]
        keys = derive_keys(payloads, durable=False)
        assert keys[0] == job_key(payloads[0])
        assert keys[1] == volatile_key(1)

    def test_derive_keys_refuses_volatile_when_durable(self):
        with pytest.raises(SuperviseError):
            derive_keys([(lambda x: x, (1,))], durable=True)


class TestCheckpointStore:
    def test_round_trip_restores_equal_results(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.record_success("k1", {"latency": 42}, attempts=2, label="run 1")
        store.record_success("k2", [1, 2, 3])
        store.close()

        reopened = CheckpointStore(tmp_path)
        assert len(reopened) == 2
        assert "k1" in reopened
        assert reopened.get("k1") == ({"latency": 42}, 2)
        assert reopened.get("k2") == ([1, 2, 3], 1)
        assert reopened.get("missing") is None

    def test_each_open_appends_a_fresh_shard(self, tmp_path):
        first = CheckpointStore(tmp_path)
        first.record_success("a", 1)
        first.close()
        second = CheckpointStore(tmp_path)
        second.record_success("b", 2)
        second.close()
        shards = sorted(p.name for p in tmp_path.glob("shard-*.jsonl"))
        assert shards == ["shard-000.jsonl", "shard-001.jsonl"]

    def test_truncated_tail_tolerated(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.record_success("good", "kept")
        store.close()
        shard = next(tmp_path.glob("shard-*.jsonl"))
        with open(shard, "a", encoding="utf-8") as f:
            f.write('{"kind": "result", "status": "ok", "key": "half')

        reopened = CheckpointStore(tmp_path)
        assert reopened.get("good") == ("kept", 1)
        assert len(reopened) == 1

    def test_wrong_schema_rejected(self, tmp_path):
        shard = tmp_path / "shard-000.jsonl"
        shard.write_text(json.dumps({"schema": "other-layout-v9"}) + "\n")
        with pytest.raises(SuperviseError):
            CheckpointStore(tmp_path)

    def test_records_before_header_rejected(self, tmp_path):
        shard = tmp_path / "shard-000.jsonl"
        shard.write_text(
            '{"kind": "result", "status": "ok", "key": "k"}\n'
            + json.dumps({"schema": CHECKPOINT_SCHEMA}) + "\n"
        )
        with pytest.raises(SuperviseError):
            CheckpointStore(tmp_path)

    def test_failures_are_informational_not_complete(self, tmp_path):
        store = CheckpointStore(tmp_path)
        failure = JobFailure(
            index=0, key="bad", kind="error", message="boom",
            attempts=3, error_type="ValueError",
        )
        store.record_failure("bad", failure)
        store.close()

        reopened = CheckpointStore(tmp_path)
        assert "bad" not in reopened            # a resume retries it
        assert reopened.failures["bad"]["message"] == "boom"

    def test_later_success_clears_recorded_failure(self, tmp_path):
        store = CheckpointStore(tmp_path)
        failure = JobFailure(
            index=0, key="k", kind="timeout", message="hung", attempts=3
        )
        store.record_failure("k", failure)
        store.record_success("k", "recovered", attempts=4)
        store.close()

        reopened = CheckpointStore(tmp_path)
        assert reopened.get("k") == ("recovered", 4)
        assert "k" not in reopened.failures
