"""PoolLease: one worker pool shared across consecutive supervised runs."""

from __future__ import annotations

import multiprocessing
import os

from repro.supervise import PoolLease, SupervisePolicy, Supervisor

FAST = SupervisePolicy(backoff_base_s=0.0, backoff_max_s=0.0)


def _worker_pid(x):
    return (x, os.getpid())


def _crash_until_marker(payload):
    """Kill the worker process outright until a marker file exists."""
    marker, x = payload
    if not marker.exists():
        marker.write_text("seen")
        os._exit(1)
    return x * 10


class TestPoolLease:
    def test_reused_across_consecutive_runs(self):
        with PoolLease() as lease:
            first = Supervisor(workers=2, policy=FAST, pool=lease).run(
                _worker_pid, [1, 2, 3, 4]
            )
            executor = lease._executor
            assert executor is not None  # the finally left it alive
            second = Supervisor(workers=2, policy=FAST, pool=lease).run(
                _worker_pid, [5, 6, 7, 8]
            )
            assert lease._executor is executor
            pids_first = {pid for o in first for _, pid in [o.result]}
            pids_second = {pid for o in second for _, pid in [o.result]}
            # Same pool, same worker processes.
            assert pids_first & pids_second
        assert lease._executor is None  # __exit__ closed it

    def test_grows_but_never_shrinks(self):
        ctx = multiprocessing.get_context()
        with PoolLease() as lease:
            small = lease.executor(ctx, 1)
            assert lease.executor(ctx, 1) is small
            big = lease.executor(ctx, 2)
            assert big is not small
            # A smaller request keeps the bigger pool.
            assert lease.executor(ctx, 1) is big

    def test_discard_forces_a_fresh_pool(self):
        ctx = multiprocessing.get_context()
        with PoolLease() as lease:
            first = lease.executor(ctx, 1)
            assert lease.owns(first)
            lease.discard()
            assert not lease.owns(first)
            second = lease.executor(ctx, 1)
            assert second is not first

    def test_crashed_worker_poisons_the_lease_not_the_results(
        self, tmp_path
    ):
        # A worker hard-exit breaks the pool; the supervisor must
        # discard the leased executor (never reuse a poisoned pool),
        # rebuild through the lease, and still deliver every result.
        with PoolLease() as lease:
            supervisor = Supervisor(workers=2, policy=FAST, pool=lease)
            outcomes = supervisor.run(
                _crash_until_marker,
                [(tmp_path / "m1", 1), (tmp_path / "m2", 2)],
            )
            assert [o.ok for o in outcomes] == [True, True]
            assert sorted(o.result for o in outcomes) == [10, 20]
            # The lease is live again for the next run.
            follow_up = Supervisor(workers=2, policy=FAST, pool=lease).run(
                _worker_pid, [9]
            )
            assert follow_up[0].ok
