"""Supervisor behavior: retries, quarantine, resume, trace records."""

from __future__ import annotations

import pytest

from repro.errors import CampaignError, SuperviseError, WatchdogError
from repro.obs.schema import validate_stream
from repro.obs.sinks import ListSink
from repro.obs.tracer import Tracer
from repro.supervise import (
    KIND_ERROR,
    CheckpointStore,
    JobFailure,
    JobSuccess,
    SupervisePolicy,
    Supervisor,
    split_outcomes,
)

#: Backoff-free policy so retry tests don't sleep.
FAST = SupervisePolicy(backoff_base_s=0.0, backoff_max_s=0.0)


def _square(x):
    return x * x


def _explode(x):
    raise RuntimeError(f"no job should run, got {x!r}")


def _poison(x):
    raise WatchdogError("event budget exhausted")


def _odd_raises(x):
    if x % 2:
        raise ValueError(f"odd input {x}")
    return x


def _fail_until_marker(payload):
    """Fail until a marker file exists (created on the first attempt)."""
    marker, x = payload
    if not marker.exists():
        marker.write_text("seen")
        raise OSError("transient failure")
    return x * 10


class TestSerialSupervision:
    def test_results_in_submission_order(self):
        outcomes = Supervisor(policy=FAST).run(_square, [3, 1, 2])
        assert [o.ok for o in outcomes] == [True, True, True]
        assert [o.result for o in outcomes] == [9, 1, 4]
        assert [o.index for o in outcomes] == [0, 1, 2]
        assert all(o.attempts == 1 for o in outcomes)

    def test_exception_becomes_typed_failure_no_holes(self):
        policy = SupervisePolicy(max_attempts=1)
        outcomes = Supervisor(policy=policy).run(_odd_raises, [2, 3, 4])
        assert [o.ok for o in outcomes] == [True, False, True]
        failure = outcomes[1]
        assert isinstance(failure, JobFailure)
        assert failure.kind == KIND_ERROR
        assert failure.error_type == "ValueError"
        assert "odd input 3" in failure.message
        assert "ValueError" in failure.traceback
        successes, failures = split_outcomes(outcomes)
        assert len(successes) == 2 and len(failures) == 1

    def test_transient_failure_retried_to_success(self, tmp_path):
        supervisor = Supervisor(policy=FAST)
        outcomes = supervisor.run(
            _fail_until_marker, [(tmp_path / "marker", 7)]
        )
        assert outcomes[0].ok
        assert outcomes[0].result == 70
        assert outcomes[0].attempts == 2
        counters = supervisor.metrics.snapshot()["counters"]
        assert counters["supervise.errors"] == 1
        assert counters["supervise.retries"] == 1

    def test_quarantine_after_max_attempts(self):
        policy = SupervisePolicy(
            max_attempts=2, backoff_base_s=0.0, backoff_max_s=0.0
        )
        supervisor = Supervisor(policy=policy)
        outcomes = supervisor.run(_odd_raises, [5])
        assert not outcomes[0].ok
        assert outcomes[0].attempts == 2
        counters = supervisor.metrics.snapshot()["counters"]
        assert counters["supervise.errors"] == 2
        assert counters["supervise.quarantined"] == 1

    def test_watchdog_poison_fails_fast(self):
        supervisor = Supervisor(policy=FAST)  # max_attempts=3
        outcomes = supervisor.run(_poison, [1])
        assert not outcomes[0].ok
        assert outcomes[0].attempts == 1       # no retries for poison
        assert outcomes[0].error_type == "WatchdogError"


class TestResume:
    def test_resume_skips_checkpointed_jobs(self, tmp_path):
        first = Supervisor(policy=FAST, checkpoint=CheckpointStore(tmp_path))
        keys = ["ka", "kb", "kc"]
        original = first.run(_square, [2, 3, 4], keys=keys)
        first.checkpoint.close()
        assert all(o.ok and not o.from_checkpoint for o in original)

        # _explode proves nothing runs: every job comes from the store.
        second = Supervisor(policy=FAST, checkpoint=CheckpointStore(tmp_path))
        resumed = second.run(_explode, [2, 3, 4], keys=keys)
        assert all(isinstance(o, JobSuccess) for o in resumed)
        assert all(o.from_checkpoint for o in resumed)
        assert [o.result for o in resumed] == [o.result for o in original]
        counters = second.metrics.snapshot()["counters"]
        assert counters["supervise.checkpoint_hits"] == 3

    def test_partial_resume_runs_only_the_gap(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.record_success("ka", 4)
        store.close()
        supervisor = Supervisor(
            policy=FAST, checkpoint=CheckpointStore(tmp_path)
        )
        outcomes = supervisor.run(_square, [2, 5], keys=["ka", "kb"])
        assert outcomes[0].from_checkpoint
        assert not outcomes[1].from_checkpoint
        assert [o.result for o in outcomes] == [4, 25]

    def test_closures_with_checkpoint_rejected(self, tmp_path):
        supervisor = Supervisor(
            policy=FAST, checkpoint=CheckpointStore(tmp_path)
        )
        with pytest.raises(SuperviseError):
            supervisor.run(_square, [lambda: None])


class TestTraceRecords:
    def test_retry_and_quarantine_records_validate(self):
        tracer = Tracer(sink=ListSink(), label="supervise-test")
        policy = SupervisePolicy(
            max_attempts=2, backoff_base_s=0.0, backoff_max_s=0.0
        )
        Supervisor(policy=policy, tracer=tracer).run(_odd_raises, [3])
        types = [r["type"] for r in tracer.records]
        assert "job.retry" in types
        assert "job.quarantine" in types
        validate_stream(tracer.records)

        retry = next(r for r in tracer.records if r["type"] == "job.retry")
        assert retry["kind"] == KIND_ERROR
        assert retry["backoff_s"] == 0.0
        quarantine = next(
            r for r in tracer.records if r["type"] == "job.quarantine"
        )
        assert quarantine["error"] == "ValueError"
        assert quarantine["attempts"] == 2


class TestStrictEntryPoints:
    def test_campaign_error_carries_outcomes(self):
        from repro.parallel import ParallelRunner

        runner = ParallelRunner(workers=1, policy=SupervisePolicy(max_attempts=1))
        with pytest.raises(CampaignError) as excinfo:
            runner.map(_odd_raises, [2, 3, 4])
        error = excinfo.value
        assert "1/3 campaign jobs quarantined" in str(error)
        assert [o.ok for o in error.outcomes] == [True, False, True]

    def test_map_outcomes_salvages_partial_results(self):
        from repro.parallel import ParallelRunner

        runner = ParallelRunner(workers=1, policy=SupervisePolicy(max_attempts=1))
        outcomes = runner.map_outcomes(_odd_raises, [2, 3, 4])
        successes, failures = split_outcomes(outcomes)
        assert [s.result for s in successes] == [2, 4]
        assert failures[0].index == 1
