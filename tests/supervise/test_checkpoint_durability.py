"""Checkpoint durability: fsync-on-append and the SIGKILL crash window.

The store's contract is that a record is durable the moment
``record_success``/``record_failure`` returns — a SIGKILL (or power
cut) immediately after must not be able to take it back.  These tests
pin the mechanism (flush + fsync per append, idempotent close) and
then prove the contract the honest way: a child process records a
result and SIGKILLs itself with no chance to flush or close, and the
parent must read the record back.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap

from repro.supervise import CheckpointStore


class TestFsyncOnAppend:
    def test_every_append_fsyncs_the_shard(self, tmp_path, monkeypatch):
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            "repro.supervise.checkpoint.os.fsync",
            lambda fd: (synced.append(fd), real_fsync(fd)),
        )
        store = CheckpointStore(tmp_path)
        store.record_success("k1", 1)
        store.record_success("k2", 2)
        store.close()
        assert len(synced) == 2

    def test_record_is_on_disk_before_close(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.record_success("k1", {"value": 1})
        # Read back through the filesystem while the writer is open.
        reloaded = CheckpointStore(tmp_path)
        assert reloaded.get("k1") == ({"value": 1}, 1)
        store.close()

    def test_close_is_idempotent(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.record_success("k1", 1)
        store.close()
        store.close()  # must not raise on the already-closed shard


class TestCrashWindow:
    def test_sigkill_after_record_success_loses_nothing(self, tmp_path):
        """A child records a result, then SIGKILLs itself mid-flight."""
        child = textwrap.dedent(f"""
            import os, signal
            from repro.supervise import CheckpointStore

            store = CheckpointStore({str(tmp_path)!r})
            store.record_success("crash-key", {{"survived": True}}, attempts=3)
            # No close(), no flush — the process dies right here.
            os.kill(os.getpid(), signal.SIGKILL)
        """)
        env = dict(os.environ)
        proc = subprocess.run(
            [sys.executable, "-c", child],
            env=env, capture_output=True, timeout=120,
        )
        assert proc.returncode == -signal.SIGKILL

        survivor = CheckpointStore(tmp_path)
        assert survivor.get("crash-key") == ({"survived": True}, 3)
        survivor.close()
