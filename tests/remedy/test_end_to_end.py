"""Remediation acceptance: chaos classification and report neutrality.

The closed loop, end to end through the real campaign engine: a chaos
campaign sweeps fault intensity over seeded cells, always-on diagnosis
flags the pathological ones, and the ``confirm-environment`` playbook
re-executes each flagged cell with its fault plan stripped.  Cells the
injector actually faulted must be classified ``environment`` (the
stripped re-run diverges); fault-free cells must never be — they have
no plan to strip, so the playbook rules them ``config`` without
probing.  And because probes bypass the checkpoint store and the
campaign tracer, attaching the whole apparatus must not change one
byte of the importance report.
"""

from __future__ import annotations

import pytest

from repro.campaign import CampaignSpec, SweepSpec, run_spec
from repro.diagnose import DiagnosisHook
from repro.obs.sinks import ListSink
from repro.obs.tracer import Tracer
from repro.remedy import RemedyEngine, require_valid_remediation_report

#: Intensity 0.0 scales the plan to a no-op (fault-free cell); 1.0 is
#: the injector's labeled chaos.  Crossed with two seeds -> cells 0/1
#: are clean, cells 2/3 are faulted.
FAULT_INTENSITIES = (0.0, 1.0)
SEEDS = (1, 2)


def chaos_spec() -> CampaignSpec:
    return CampaignSpec(
        name="chaos-remedy",
        scenario="faults",
        base={"measure_ms": 120},
        sweeps=(
            SweepSpec(field="fault_intensity", values=FAULT_INTENSITIES),
            SweepSpec(field="seed", values=SEEDS),
        ),
        matrix=("baseline",),
        metrics=("latency_mean_ns", "achieved_rate"),
    )


def _cell_intensity(run, index: int) -> float:
    return run.matrix.cells[index].overrides["fault_intensity"]


@pytest.fixture(scope="module")
def remediated():
    """One remediated chaos campaign, shared across the assertions."""
    spec = chaos_spec()
    sink = ListSink()
    tracer = Tracer(sink, label="chaos-remedy")
    diagnosis = DiagnosisHook()
    remedy = RemedyEngine()
    run = run_spec(
        spec, tracer=tracer, diagnosis=diagnosis, remedy=remedy,
    )
    tracer.close()
    return spec, run, remedy, diagnosis


class TestChaosClassification:
    def test_faulted_cells_classified_environment(self, remediated):
        _, run, remedy, diagnosis = remediated
        flagged = [v for v in diagnosis.verdicts if v.findings]
        assert flagged, "the chaos cells must draw diagnosis findings"
        faulted_actions = [
            a for a in remedy.actions
            if _cell_intensity(run, a.index) > 0.0
        ]
        assert faulted_actions, "faulted cells must trigger remediation"
        environment = [
            a for a in faulted_actions if a.verdict == "environment"
        ]
        # The acceptance bar: >= 0.8 of injector-labeled episodes
        # correctly blamed on the environment.
        assert len(environment) / len(faulted_actions) >= 0.8

    def test_zero_misclassifications_on_fault_free_cells(self, remediated):
        _, run, remedy, _ = remediated
        clean_actions = [
            a for a in remedy.actions
            if _cell_intensity(run, a.index) == 0.0
        ]
        assert all(a.verdict != "environment" for a in clean_actions)

    def test_probes_stayed_within_budget(self, remediated):
        _, _, remedy, _ = remediated
        assert 0 < remedy.probes_used <= remedy.budget

    def test_report_validates(self, remediated):
        spec, run, remedy, _ = remediated
        document = remedy.report(
            spec.name, spec_digest=run.matrix.spec_digest
        ).to_json()
        require_valid_remediation_report(document)
        assert document["summary"]["actions"] == len(remedy.actions)


class TestReportNeutrality:
    def test_remediation_never_changes_report_bytes(self, remediated):
        spec, run, _, _ = remediated
        plain = run_spec(chaos_spec())
        assert (
            plain.report.to_canonical() == run.report.to_canonical()
        ), "attaching diagnosis+remediation must not move a report byte"
