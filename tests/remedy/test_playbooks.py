"""Playbook unit tests: verdict logic, registry, and config loading."""

from __future__ import annotations

import json

import pytest

from repro.errors import RemedyError
from repro.remedy import (
    DEFAULT_BUDGET,
    PLAYBOOKS,
    TRIGGER_FINDING,
    TRIGGER_QUARANTINE,
    FlaggedJob,
    ProbeOutcome,
    ProbeRun,
    QuarantinedJob,
    load_playbook_config,
    resolve_playbooks,
    result_digest,
)
from repro.remedy.playbooks import (
    CONFIRM_ENVIRONMENT,
    ISOLATE_AND_RERUN,
    RELAX_WATCHDOG,
)


def _flagged(result=None):
    return FlaggedJob(
        index=0, key="k" * 64, label="cell", findings=2,
        classes=("loss",), result=result,
    )


def _quarantined(error_type="WatchdogError"):
    return QuarantinedJob(
        index=1, key="q" * 64, label="bad cell", kind="poison",
        error_type=error_type, message="boom",
    )


def _probe_returning(outcome):
    calls = []

    def probe(edit):
        calls.append(edit)
        return outcome

    probe.calls = calls
    return probe


class TestRegistry:
    def test_registry_order_is_deterministic(self):
        assert list(PLAYBOOKS) == [
            "confirm-environment", "relax-watchdog", "isolate-and-rerun",
        ]

    def test_resolve_none_is_the_full_registry(self):
        assert resolve_playbooks(None) == tuple(PLAYBOOKS.values())

    def test_resolve_keeps_given_order(self):
        resolved = resolve_playbooks(["relax-watchdog", "confirm-environment"])
        assert [p.name for p in resolved] == [
            "relax-watchdog", "confirm-environment",
        ]

    def test_resolve_passes_playbook_objects_through(self):
        assert resolve_playbooks([RELAX_WATCHDOG]) == (RELAX_WATCHDOG,)

    def test_resolve_rejects_unknown_names(self):
        with pytest.raises(RemedyError, match="unknown playbook"):
            resolve_playbooks(["reboot-the-universe"])

    def test_resolve_rejects_empty_list(self):
        with pytest.raises(RemedyError, match="must not be empty"):
            resolve_playbooks([])

    def test_triggers(self):
        assert CONFIRM_ENVIRONMENT.trigger == TRIGGER_FINDING
        assert RELAX_WATCHDOG.trigger == TRIGGER_QUARANTINE
        assert ISOLATE_AND_RERUN.trigger == TRIGGER_QUARANTINE

    def test_match_predicates_route_by_error_type(self):
        watchdog = _quarantined("WatchdogError")
        other = _quarantined("RuntimeError")
        assert RELAX_WATCHDOG.matches(watchdog)
        assert not RELAX_WATCHDOG.matches(other)
        assert ISOLATE_AND_RERUN.matches(other)
        assert not ISOLATE_AND_RERUN.matches(watchdog)


class TestResultDigest:
    def test_equal_results_share_a_digest(self):
        assert result_digest({"a": 1}) == result_digest({"a": 1})

    def test_different_results_diverge(self):
        assert result_digest({"a": 1}) != result_digest({"a": 2})


class TestConfirmEnvironment:
    def test_inapplicable_is_config_with_zero_probes(self):
        # The zero-misclassification guarantee: a cell with no fault
        # plan to strip can never be blamed on the environment.
        probe = _probe_returning(ProbeOutcome(status="inapplicable"))
        verdict, probes, detail = CONFIRM_ENVIRONMENT.run(_flagged(), probe)
        assert (verdict, probes) == ("config", 0)
        assert "by construction" in detail
        assert probe.calls == ["strip-faults"]

    def test_diverging_digest_is_environment(self):
        probe = _probe_returning(
            ProbeOutcome(status="ok", run=ProbeRun(result={"x": 2}))
        )
        verdict, probes, detail = CONFIRM_ENVIRONMENT.run(
            _flagged(result={"x": 1}), probe,
        )
        assert (verdict, probes) == ("environment", 1)
        assert "diverged" in detail

    def test_matching_digest_is_config(self):
        probe = _probe_returning(
            ProbeOutcome(status="ok", run=ProbeRun(result={"x": 1}))
        )
        verdict, probes, _ = CONFIRM_ENVIRONMENT.run(
            _flagged(result={"x": 1}), probe,
        )
        assert (verdict, probes) == ("config", 1)

    def test_failed_probe_is_config(self):
        probe = _probe_returning(ProbeOutcome(
            status="failed", error_type="RuntimeError", message="died",
        ))
        verdict, probes, detail = CONFIRM_ENVIRONMENT.run(_flagged(), probe)
        assert (verdict, probes) == ("config", 1)
        assert "RuntimeError" in detail

    def test_budget_exhaustion_is_skipped(self):
        probe = _probe_returning(ProbeOutcome(status="budget"))
        verdict, probes, detail = CONFIRM_ENVIRONMENT.run(_flagged(), probe)
        assert (verdict, probes) == ("skipped", 0)
        assert "budget" in detail

    def test_no_prober_is_skipped(self):
        probe = _probe_returning(ProbeOutcome(status="no-prober"))
        verdict, probes, detail = CONFIRM_ENVIRONMENT.run(_flagged(), probe)
        assert (verdict, probes) == ("skipped", 0)
        assert "no prober" in detail


class TestRelaxWatchdog:
    def test_success_under_slack_recovers(self):
        probe = _probe_returning(
            ProbeOutcome(status="ok", run=ProbeRun(result=1))
        )
        verdict, probes, _ = RELAX_WATCHDOG.run(_quarantined(), probe)
        assert (verdict, probes) == ("recovered-with-slack", 1)
        assert probe.calls == ["relax-watchdog"]

    def test_repeat_blowout_is_persistent(self):
        probe = _probe_returning(ProbeOutcome(
            status="failed", error_type="WatchdogError", message="again",
        ))
        verdict, probes, detail = RELAX_WATCHDOG.run(_quarantined(), probe)
        assert (verdict, probes) == ("persistent", 1)
        assert "runaway" in detail

    def test_no_watchdog_is_skipped(self):
        probe = _probe_returning(ProbeOutcome(status="inapplicable"))
        verdict, probes, _ = RELAX_WATCHDOG.run(_quarantined(), probe)
        assert (verdict, probes) == ("skipped", 0)


class TestIsolateAndRerun:
    def test_clean_rerun_is_transient(self):
        probe = _probe_returning(
            ProbeOutcome(status="ok", run=ProbeRun(result=1, records=7))
        )
        verdict, probes, detail = ISOLATE_AND_RERUN.run(
            _quarantined("RuntimeError"), probe,
        )
        assert (verdict, probes) == ("transient", 1)
        assert "7 record(s)" in detail
        assert probe.calls == ["traced"]

    def test_repeat_failure_is_persistent(self):
        probe = _probe_returning(ProbeOutcome(
            status="failed", error_type="RuntimeError", message="again",
        ))
        verdict, probes, _ = ISOLATE_AND_RERUN.run(
            _quarantined("RuntimeError"), probe,
        )
        assert (verdict, probes) == ("persistent", 1)


class TestPlaybookConfig:
    def _write(self, tmp_path, document):
        path = tmp_path / "playbooks.json"
        path.write_text(json.dumps(document))
        return path

    def test_full_config_round_trips(self, tmp_path):
        path = self._write(tmp_path, {
            "schema": "repro-remedy-config-v1",
            "playbooks": ["relax-watchdog"],
            "budget": 3,
        })
        playbooks, budget = load_playbook_config(path)
        assert [p.name for p in playbooks] == ["relax-watchdog"]
        assert budget == 3

    def test_defaults_when_fields_omitted(self, tmp_path):
        playbooks, budget = load_playbook_config(self._write(tmp_path, {}))
        assert playbooks == tuple(PLAYBOOKS.values())
        assert budget == DEFAULT_BUDGET

    def test_example_config_is_valid(self):
        import pathlib

        example = (
            pathlib.Path(__file__).resolve().parents[2]
            / "examples" / "remedy_playbooks.json"
        )
        playbooks, budget = load_playbook_config(example)
        assert playbooks == tuple(PLAYBOOKS.values())
        assert budget == DEFAULT_BUDGET

    def test_wrong_schema_rejected(self, tmp_path):
        path = self._write(tmp_path, {"schema": "not-a-remedy-config"})
        with pytest.raises(RemedyError, match="schema"):
            load_playbook_config(path)

    @pytest.mark.parametrize("budget", [-1, 1.5, "8", True])
    def test_bad_budget_rejected(self, tmp_path, budget):
        path = self._write(tmp_path, {"budget": budget})
        with pytest.raises(RemedyError, match="budget"):
            load_playbook_config(path)

    def test_unknown_playbook_rejected_with_path(self, tmp_path):
        path = self._write(tmp_path, {"playbooks": ["nope"]})
        with pytest.raises(RemedyError, match="unknown playbook"):
            load_playbook_config(path)

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(RemedyError, match="invalid JSON"):
            load_playbook_config(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(RemedyError, match="unreadable"):
            load_playbook_config(tmp_path / "absent.json")
