"""RemedyEngine behavior: firing order, budget, probes, observability."""

from __future__ import annotations

import pytest

from repro.errors import RemedyError
from repro.obs.metrics import MetricsRegistry
from repro.obs.schema import validate_stream
from repro.obs.sinks import ListSink
from repro.obs.tracer import Tracer
from repro.remedy import ProbeRun, RemedyEngine, require_valid_remediation_report


def _flag(engine, index=0, result=None):
    engine.job_flagged(
        index=index, key="k" * 64, label=f"cell {index}",
        findings=1, classes=("loss",), result=result,
    )


def _quarantine(engine, index=0, error_type="WatchdogError"):
    engine.job_quarantined(
        index=index, key="q" * 64, label=f"cell {index}",
        kind="poison", error_type=error_type, message="boom",
    )


class TestFiring:
    def test_no_prober_records_skipped(self):
        engine = RemedyEngine()
        _flag(engine, result={"x": 1})
        assert [a.verdict for a in engine.actions] == ["skipped"]
        assert engine.probes_used == 0

    def test_flagged_job_with_diverging_probe_is_environment(self):
        engine = RemedyEngine()
        engine.bind_prober(lambda index, edit: ProbeRun(result={"x": 2}))
        _flag(engine, result={"x": 1})
        action = engine.actions[0]
        assert action.playbook == "confirm-environment"
        assert action.verdict == "environment"
        assert action.probes == 1
        assert engine.probes_used == 1

    def test_inapplicable_probe_spends_no_budget(self):
        engine = RemedyEngine()
        engine.bind_prober(lambda index, edit: None)
        _flag(engine, result={"x": 1})
        assert engine.actions[0].verdict == "config"
        assert engine.probes_used == 0

    def test_raising_prober_consumes_budget_and_classifies(self):
        def prober(index, edit):
            raise RuntimeError("probe died")

        engine = RemedyEngine()
        engine.bind_prober(prober)
        _flag(engine, result={"x": 1})
        action = engine.actions[0]
        assert action.verdict == "config"
        assert "RuntimeError" in action.detail
        assert engine.probes_used == 1

    def test_bare_result_is_coerced_into_a_probe_run(self):
        engine = RemedyEngine()
        engine.bind_prober(lambda index, edit: {"x": 1})
        _flag(engine, result={"x": 1})
        assert engine.actions[0].verdict == "config"
        assert engine.actions[0].probes == 1

    def test_quarantine_routes_by_error_type(self):
        engine = RemedyEngine()
        engine.bind_prober(lambda index, edit: ProbeRun(result=1))
        _quarantine(engine, index=0, error_type="WatchdogError")
        _quarantine(engine, index=1, error_type="RuntimeError")
        assert [(a.playbook, a.verdict) for a in engine.actions] == [
            ("relax-watchdog", "recovered-with-slack"),
            ("isolate-and-rerun", "transient"),
        ]

    def test_probe_receives_the_event_index(self):
        seen = []

        def prober(index, edit):
            seen.append((index, edit))
            return ProbeRun(result=1)

        engine = RemedyEngine()
        engine.bind_prober(prober)
        _quarantine(engine, index=7, error_type="RuntimeError")
        assert seen == [(7, "traced")]


class TestBudget:
    def test_budget_exhaustion_skips_further_probes(self):
        engine = RemedyEngine(budget=1)
        engine.bind_prober(lambda index, edit: ProbeRun(result={"x": 2}))
        _flag(engine, index=0, result={"x": 1})
        _flag(engine, index=1, result={"x": 1})
        assert [a.verdict for a in engine.actions] == [
            "environment", "skipped",
        ]
        assert engine.probes_used == 1
        assert engine.probes_remaining == 0

    def test_zero_budget_never_probes(self):
        calls = []

        def prober(index, edit):
            calls.append(edit)
            return ProbeRun(result=1)

        engine = RemedyEngine(budget=0)
        engine.bind_prober(prober)
        _flag(engine, result=1)
        assert calls == []
        assert engine.actions[0].verdict == "skipped"

    @pytest.mark.parametrize("budget", [-1, 1.5, "8", True])
    def test_invalid_budget_rejected(self, budget):
        with pytest.raises(RemedyError, match="budget"):
            RemedyEngine(budget=budget)


class TestObservability:
    def _engine_with_runtime(self):
        engine = RemedyEngine()
        sink = ListSink()
        tracer = Tracer(sink, label="remedy-test")
        metrics = MetricsRegistry()
        engine.bind_runtime(tracer=tracer, metrics=metrics)
        return engine, sink, tracer, metrics

    def test_metrics_count_actions_probes_and_verdicts(self):
        engine, _, _, metrics = self._engine_with_runtime()
        engine.bind_prober(lambda index, edit: ProbeRun(result={"x": 2}))
        _flag(engine, result={"x": 1})
        counters = metrics.snapshot()["counters"]
        assert counters["remedy.actions"] == 1
        assert counters["remedy.probes"] == 1
        assert counters["remedy.verdict.environment"] == 1

    def test_budget_exhaustion_is_counted(self):
        engine, _, _, metrics = self._engine_with_runtime()
        engine.budget = 0
        engine.bind_prober(lambda index, edit: ProbeRun(result=1))
        _flag(engine, result=1)
        counters = metrics.snapshot()["counters"]
        assert counters["remedy.budget_exhausted"] == 1
        assert "remedy.probes" not in counters

    def test_trace_records_validate_against_the_schema(self):
        engine, sink, tracer, _ = self._engine_with_runtime()
        engine.bind_prober(lambda index, edit: ProbeRun(result={"x": 2}))
        _flag(engine, result={"x": 1})
        _quarantine(engine, index=1, error_type="RuntimeError")
        tracer.close()
        validate_stream(sink.records)
        types = [r["type"] for r in sink.records]
        assert types.count("remedy.action") == 2
        assert types.count("remedy.verdict") == 2
        verdicts = [
            r for r in sink.records if r["type"] == "remedy.verdict"
        ]
        assert verdicts[0]["verdict"] == "environment"
        assert verdicts[0]["probes"] == 1


class TestReport:
    def test_report_round_trips_and_validates(self):
        engine = RemedyEngine(budget=5)
        engine.bind_prober(lambda index, edit: ProbeRun(result={"x": 2}))
        _flag(engine, index=0, result={"x": 1})
        _quarantine(engine, index=1, error_type="RuntimeError")
        report = engine.report("my-campaign", spec_digest="ab" * 32)
        document = report.to_json()
        require_valid_remediation_report(document)
        assert document["campaign"] == "my-campaign"
        assert document["budget"] == 5
        assert document["summary"]["actions"] == 2
        assert document["summary"]["by_verdict"] == {
            "environment": 1, "transient": 1,
        }

    def test_empty_report_is_valid(self):
        report = RemedyEngine().report("quiet")
        require_valid_remediation_report(report.to_json())
        assert report.summary()["actions"] == 0

    def test_canonical_rendering_is_deterministic(self):
        engine = RemedyEngine()
        engine.bind_prober(lambda index, edit: ProbeRun(result=2))
        _flag(engine, result=1)
        first = engine.report("c").to_canonical()
        second = engine.report("c").to_canonical()
        assert first == second
        assert first.endswith("\n")
