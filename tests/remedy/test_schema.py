"""repro-remediation-v1 validation: structure, enums, summary math."""

from __future__ import annotations

import json

import pytest

from repro.errors import RemedyError
from repro.remedy import (
    ProbeRun,
    RemedyEngine,
    require_valid_remediation_report,
    validate_remediation_report,
)


def _valid_document():
    engine = RemedyEngine(budget=4)
    engine.bind_prober(lambda index, edit: ProbeRun(result={"x": 2}))
    engine.job_flagged(
        index=0, key="k" * 64, label="cell", findings=1,
        classes=("loss",), result={"x": 1},
    )
    return engine.report("campaign", spec_digest="cd" * 32).to_json()


class TestValidation:
    def test_engine_output_is_valid(self):
        assert validate_remediation_report(_valid_document()) == []

    def test_json_round_trip_stays_valid(self):
        document = json.loads(json.dumps(_valid_document()))
        assert validate_remediation_report(document) == []

    def test_non_object_rejected(self):
        problems = validate_remediation_report(["not", "a", "report"])
        assert problems and "must be an object" in problems[0]

    def test_missing_field_reported(self):
        document = _valid_document()
        del document["budget"]
        assert any("budget" in p for p in validate_remediation_report(document))

    def test_wrong_schema_reported(self):
        document = _valid_document()
        document["schema"] = "repro-remediation-v0"
        assert any("schema" in p for p in validate_remediation_report(document))

    def test_unknown_verdict_reported(self):
        document = _valid_document()
        document["actions"][0]["verdict"] = "vibes"
        assert any(
            "verdict" in p for p in validate_remediation_report(document)
        )

    def test_unknown_trigger_reported(self):
        document = _valid_document()
        document["actions"][0]["trigger"] = "hunch"
        assert any(
            "trigger" in p for p in validate_remediation_report(document)
        )

    def test_inconsistent_summary_reported(self):
        document = _valid_document()
        document["summary"]["probes"] += 1
        assert any(
            "probes" in p for p in validate_remediation_report(document)
        )

    def test_unexpected_fields_reported(self):
        document = _valid_document()
        document["bonus"] = True
        assert any("bonus" in str(p) for p in validate_remediation_report(document))

    def test_require_raises_typed_error(self):
        with pytest.raises(RemedyError, match="does not conform"):
            require_valid_remediation_report({"schema": "nope"})
