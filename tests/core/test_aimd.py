"""Tests for the AIMD batch-limit controller (§5)."""

from __future__ import annotations

import pytest

from repro.core.aimd import AimdBatchLimiter, AimdConfig
from repro.core.policy import PerfSample
from repro.errors import EstimationError
from repro.sim.loop import Simulator

CONFIG = AimdConfig(
    tick_ns=1000,
    latency_target_ns=500_000,
    increase_bytes=100,
    decrease_factor=0.5,
    comfort_fraction=0.5,
)


def make_limiter(sim, latency_fn, config=CONFIG):
    applied = []

    def sample_fn():
        latency = latency_fn()
        if latency is None:
            return None
        return PerfSample(latency_ns=latency, throughput_per_sec=1.0)

    limiter = AimdBatchLimiter(
        sim,
        sample_fn=sample_fn,
        apply_fn=lambda value: applied.append((sim.now, value)),
        config=config,
    )
    return limiter, applied


class TestAimdConfig:
    def test_validation(self):
        with pytest.raises(EstimationError):
            AimdConfig(tick_ns=0).validate()
        with pytest.raises(EstimationError):
            AimdConfig(latency_target_ns=0).validate()
        with pytest.raises(EstimationError):
            AimdConfig(increase_bytes=0).validate()
        with pytest.raises(EstimationError):
            AimdConfig(decrease_factor=1.0).validate()
        with pytest.raises(EstimationError):
            AimdConfig(comfort_fraction=0.0).validate()


class TestAimdDynamics:
    def test_additive_increase_under_pressure(self):
        """Latency above target -> the batch floor grows linearly."""
        sim = Simulator()
        limiter, _ = make_limiter(sim, lambda: 2_000_000)
        limiter.start()
        sim.run(until=10_500)
        assert limiter.batch_bytes == 10 * 100

    def test_multiplicative_decay_when_comfortable(self):
        """Latency far below target -> the floor decays toward zero."""
        sim = Simulator()
        state = {"latency": 2_000_000}
        limiter, _ = make_limiter(sim, lambda: state["latency"])
        limiter.start()
        sim.run(until=10_500)
        grown = limiter.batch_bytes
        state["latency"] = 1_000  # far under target; EWMA follows
        sim.run(until=30_500)
        assert limiter.batch_bytes < grown / 4

    def test_hysteresis_band_freezes_floor(self):
        """Between comfort*target and target, the floor holds steady."""
        sim = Simulator()
        limiter, _ = make_limiter(sim, lambda: 2_000_000)
        limiter.start()
        sim.run(until=5_500)
        grown = limiter.batch_bytes

        sim2 = Simulator()
        state = {"latency": 400_000}  # in (250k, 500k): the band
        limiter2, _ = make_limiter(sim2, lambda: state["latency"])
        limiter2.batch_bytes = grown
        limiter2.start()
        sim2.run(until=10_500)
        assert limiter2.batch_bytes == grown

    def test_cap_at_max_batch(self):
        sim = Simulator()
        config = AimdConfig(tick_ns=1000, latency_target_ns=1,
                            increase_bytes=100_000, max_batch_bytes=4096)
        limiter, _ = make_limiter(sim, lambda: 10**9, config)
        limiter.start()
        sim.run(until=5_500)
        assert limiter.batch_bytes == 4096

    def test_none_samples_freeze_controller(self):
        sim = Simulator()
        limiter, applied = make_limiter(sim, lambda: None)
        limiter.start()
        sim.run(until=10_500)
        assert limiter.batch_bytes == 0

    def test_history_records_ticks(self):
        sim = Simulator()
        limiter, _ = make_limiter(sim, lambda: 2_000_000)
        limiter.start()
        sim.run(until=5_500)
        assert len(limiter.history) == 5

    def test_stop(self):
        sim = Simulator()
        limiter, _ = make_limiter(sim, lambda: 2_000_000)
        limiter.start()
        sim.run(until=3_500)
        limiter.stop()
        sim.run(until=20_000)
        assert len(limiter.history) == 3

    def test_sawtooth_around_target(self):
        """A responsive plant (latency falls once the floor is big
        enough) produces the AIMD sawtooth: grow, relieve, decay,
        relapse, grow again."""
        sim = Simulator()
        state = {"floor": 0}

        def plant_latency():
            # The plant is overloaded unless the floor exceeds 300B.
            return 50_000 if state["floor"] >= 300 else 2_000_000

        def sample_fn():
            return PerfSample(latency_ns=plant_latency(), throughput_per_sec=1.0)

        floors = []

        def apply_fn(value):
            state["floor"] = value
            floors.append(value)

        limiter = AimdBatchLimiter(
            sim, sample_fn=sample_fn, apply_fn=apply_fn,
            config=AimdConfig(tick_ns=1000, latency_target_ns=500_000,
                              increase_bytes=100, decrease_factor=0.5,
                              comfort_fraction=0.5, alpha=1.0),
        )
        limiter.start()
        sim.run(until=60_500)
        assert max(floors) >= 300          # grew into relief
        rises = sum(1 for a, b in zip(floors, floors[1:]) if b > a)
        falls = sum(1 for a, b in zip(floors, floors[1:]) if b < a)
        assert rises > 3 and falls > 3      # sawtooth, not a one-shot
