"""Tests for QueueState / TRACK (Algorithm 1)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.qstate import QueueSnapshot, QueueState
from repro.errors import EstimationError


class ManualClock:
    """A controllable integer clock."""

    def __init__(self, start: int = 0):
        self.now = start

    def __call__(self) -> int:
        return self.now

    def advance(self, dt: int) -> None:
        self.now += dt


@pytest.fixture
def clock():
    return ManualClock()


class TestTrack:
    def test_initial_state(self, clock):
        qs = QueueState(clock)
        assert qs.size == 0
        assert qs.total == 0
        assert qs.integral == 0
        assert qs.time == 0

    def test_add_items_updates_size_not_total(self, clock):
        qs = QueueState(clock)
        qs.track(5)
        assert qs.size == 5
        assert qs.total == 0

    def test_remove_items_updates_total(self, clock):
        qs = QueueState(clock)
        qs.track(5)
        qs.track(-3)
        assert qs.size == 2
        assert qs.total == 3

    def test_integral_accumulates_at_old_size(self, clock):
        qs = QueueState(clock)
        qs.track(4)          # size 4 at t=0
        clock.advance(10)
        qs.track(2)          # 4 items for 10 ns -> integral 40
        assert qs.integral == 40
        clock.advance(5)
        qs.track(-6)         # 6 items for 5 ns -> +30
        assert qs.integral == 70
        assert qs.size == 0
        assert qs.total == 6

    def test_paper_example(self, clock):
        """The paper's §3.1 illustration: 1 item for 10us, then 4 for
        20us gives integral 90 item-us and average occupancy 3."""
        qs = QueueState(clock)
        qs.track(1)
        clock.advance(10)
        qs.track(3)
        clock.advance(20)
        qs.track(0)
        assert qs.integral == 1 * 10 + 4 * 20
        assert qs.integral / qs.time == 3.0

    def test_track_zero_advances_integral_only(self, clock):
        qs = QueueState(clock)
        qs.track(2)
        clock.advance(7)
        qs.track(0)
        assert qs.integral == 14
        assert qs.size == 2
        assert qs.total == 0

    def test_negative_size_rejected(self, clock):
        qs = QueueState(clock)
        qs.track(1)
        with pytest.raises(EstimationError):
            qs.track(-2)

    def test_negative_initial_size_rejected(self, clock):
        with pytest.raises(EstimationError):
            QueueState(clock, start_size=-1)

    def test_clock_regression_rejected(self, clock):
        qs = QueueState(clock)
        clock.now = -5
        with pytest.raises(EstimationError):
            qs.track(1)

    def test_start_size_counts_toward_integral(self, clock):
        qs = QueueState(clock, start_size=3)
        clock.advance(4)
        qs.track(0)
        assert qs.integral == 12


class TestSnapshot:
    def test_snapshot_brings_integral_forward(self, clock):
        qs = QueueState(clock)
        qs.track(2)
        clock.advance(10)
        snap = qs.snapshot()
        assert snap.integral == 20
        assert snap.time == 10
        assert snap.total == 0

    def test_snapshot_is_immutable_triple(self, clock):
        qs = QueueState(clock)
        snap = qs.snapshot()
        assert isinstance(snap, QueueSnapshot)
        with pytest.raises(AttributeError):
            snap.total = 5

    def test_snapshot_subtraction(self):
        a = QueueSnapshot(time=10, total=5, integral=100)
        b = QueueSnapshot(time=30, total=9, integral=180)
        delta = b - a
        assert delta.time == 20
        assert delta.total == 4
        assert delta.integral == 80


class TestTrackProperties:
    """Property-based invariants of Algorithm 1."""

    @given(
        st.lists(
            st.tuples(st.integers(1, 50), st.integers(0, 1000)),
            min_size=1,
            max_size=60,
        )
    )
    def test_conservation(self, events):
        """size + total == total items ever added, always."""
        clock = ManualClock()
        qs = QueueState(clock)
        added = 0
        for n, dt in events:
            clock.advance(dt)
            qs.track(n)
            added += n
            # Remove a random-but-deterministic portion.
            to_remove = min(qs.size, n // 2)
            if to_remove:
                qs.track(-to_remove)
        assert qs.size + qs.total == added
        assert qs.size >= 0

    @given(
        st.lists(
            st.tuples(st.integers(0, 20), st.integers(0, 500)),
            min_size=1,
            max_size=60,
        )
    )
    def test_integral_monotone_nondecreasing(self, events):
        """The integral never decreases (sizes are non-negative)."""
        clock = ManualClock()
        qs = QueueState(clock)
        last_integral = 0
        for n, dt in events:
            clock.advance(dt)
            qs.track(n)
            assert qs.integral >= last_integral
            last_integral = qs.integral

    @given(st.lists(st.integers(0, 1000), min_size=2, max_size=40))
    def test_integral_bounded_by_peak_size_times_time(self, gaps):
        """integral <= max_size * elapsed — a Little's law sanity bound."""
        clock = ManualClock()
        qs = QueueState(clock)
        peak = 0
        for index, dt in enumerate(gaps):
            clock.advance(dt)
            qs.track(index % 3)
            peak = max(peak, qs.size)
        qs.track(0)
        assert qs.integral <= peak * clock.now
