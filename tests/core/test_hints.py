"""Tests for the create/complete hint API (§3.3)."""

from __future__ import annotations

import pytest

from repro.core.hints import HintSession, RemoteHintEstimator
from repro.errors import EstimationError
from tests.core.test_qstate import ManualClock


@pytest.fixture
def clock():
    return ManualClock()


class TestHintSession:
    def test_create_complete_track_outstanding(self, clock):
        session = HintSession(clock)
        session.create(3)
        assert session.outstanding == 3
        session.complete(2)
        assert session.outstanding == 1

    def test_counts_must_be_positive(self, clock):
        session = HintSession(clock)
        with pytest.raises(EstimationError):
            session.create(0)
        with pytest.raises(EstimationError):
            session.complete(-1)

    def test_completing_more_than_outstanding_rejected(self, clock):
        session = HintSession(clock)
        session.create(1)
        with pytest.raises(EstimationError):
            session.complete(2)

    def test_sample_yields_littles_law_latency(self, clock):
        session = HintSession(clock)
        assert session.sample() is None  # baseline
        session.create(1)
        clock.advance(500)
        session.complete(1)
        clock.advance(1)
        avgs = session.sample()
        assert avgs is not None
        assert avgs.latency_ns == pytest.approx(500)

    def test_sample_interval_resets(self, clock):
        session = HintSession(clock)
        session.sample()
        session.create(1)
        clock.advance(100)
        session.complete(1)
        clock.advance(1)
        first = session.sample()
        # Second interval: different residence time.
        session.create(1)
        clock.advance(300)
        session.complete(1)
        clock.advance(1)
        second = session.sample()
        assert first.latency_ns == pytest.approx(100)
        assert second.latency_ns == pytest.approx(300)

    def test_sample_without_time_progress_is_none(self, clock):
        session = HintSession(clock)
        session.sample()
        assert session.sample() is None


class TestRemoteHintEstimator:
    class FakeExchange:
        def __init__(self):
            self.remote_hint_prev = None
            self.remote_hint_cur = None

    def test_needs_two_snapshots(self, clock):
        exchange = self.FakeExchange()
        estimator = RemoteHintEstimator(exchange)
        assert estimator.sample() is None

    def test_estimates_from_exchange_snapshots(self, clock):
        from repro.core.qstate import QueueState

        state = QueueState(clock)
        exchange = self.FakeExchange()
        exchange.remote_hint_prev = state.snapshot()
        state.track(2)
        clock.advance(400)
        state.track(-2)
        exchange.remote_hint_cur = state.snapshot()
        estimator = RemoteHintEstimator(exchange)
        avgs = estimator.sample()
        assert avgs.latency_ns == pytest.approx(400)
        assert avgs.throughput_per_sec == pytest.approx(2 * 1e9 / 400)
