"""Tests for the incremental EWMA (§5 smoothing)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.ewma import Ewma
from repro.errors import EstimationError


class TestEwma:
    def test_first_value_becomes_mean(self):
        ewma = Ewma(0.5)
        assert not ewma.initialized
        ewma.update(10.0)
        assert ewma.mean == 10.0
        assert ewma.initialized

    def test_update_moves_toward_observation(self):
        ewma = Ewma(0.5)
        ewma.update(0.0)
        ewma.update(10.0)
        assert ewma.mean == pytest.approx(5.0)
        ewma.update(10.0)
        assert ewma.mean == pytest.approx(7.5)

    def test_alpha_one_tracks_exactly(self):
        ewma = Ewma(1.0)
        for value in (3.0, 7.0, -2.0):
            ewma.update(value)
            assert ewma.mean == value

    def test_invalid_alpha_rejected(self):
        for alpha in (0.0, -0.1, 1.5):
            with pytest.raises(EstimationError):
                Ewma(alpha)

    def test_variance_zero_for_constant_stream(self):
        ewma = Ewma(0.3)
        for _ in range(20):
            ewma.update(5.0)
        assert ewma.variance == pytest.approx(0.0)
        assert ewma.stddev == pytest.approx(0.0)

    def test_variance_positive_for_noisy_stream(self):
        ewma = Ewma(0.3)
        for index in range(50):
            ewma.update(float(index % 2) * 10.0)
        assert ewma.variance > 0

    def test_reset(self):
        ewma = Ewma(0.3)
        ewma.update(5.0)
        ewma.reset()
        assert ewma.mean is None
        assert ewma.updates == 0

    @given(
        st.floats(0.01, 1.0),
        st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=100),
    )
    def test_mean_bounded_by_observations(self, alpha, values):
        """The EWMA mean always stays within the observed range."""
        ewma = Ewma(alpha)
        for value in values:
            ewma.update(value)
        assert min(values) - 1e-6 <= ewma.mean <= max(values) + 1e-6

    @given(st.lists(st.floats(0, 1e6), min_size=2, max_size=100))
    def test_converges_to_constant_tail(self, values):
        """After many constant observations, the mean approaches it."""
        ewma = Ewma(0.5)
        for value in values:
            ewma.update(value)
        for _ in range(100):
            ewma.update(42.0)
        assert ewma.mean == pytest.approx(42.0, abs=1e-3)
