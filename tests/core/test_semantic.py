"""Tests for the message-unit adapters (§3.3)."""

from __future__ import annotations

import pytest

from repro.core.semantic import (
    ByteUnits,
    HintUnits,
    PacketUnits,
    SyscallUnits,
    _BoundaryCounter,
    attach_units,
)
from repro.errors import EstimationError
from tests.core.test_qstate import ManualClock


class TestBoundaryCounter:
    def test_counts_crossed_boundaries(self):
        counter = _BoundaryCounter()
        counter.add_boundary(10)
        counter.add_boundary(20)
        counter.add_boundary(30)
        assert counter.crossed(5) == 0
        assert counter.crossed(20) == 2
        assert counter.crossed(100) == 1

    def test_rejects_non_monotone_boundaries(self):
        counter = _BoundaryCounter()
        counter.add_boundary(10)
        with pytest.raises(EstimationError):
            counter.add_boundary(10)


def linked_pair(cls):
    clock_a, clock_b = ManualClock(), ManualClock()
    a, b = cls(clock_a), cls(clock_b)
    a.peer = b
    b.peer = a
    return a, b, clock_a, clock_b


class TestSyscallUnits:
    def test_one_send_is_one_unit(self):
        a, b, clock_a, clock_b = linked_pair(SyscallUnits)
        a.on_send(100)
        assert a.qs_unacked.size == 1
        a.on_send(200)
        assert a.qs_unacked.size == 2

    def test_unit_leaves_unacked_when_fully_acked(self):
        a, b, clock_a, _ = linked_pair(SyscallUnits)
        a.on_send(100)
        clock_a.advance(10)
        a.on_acked(50)          # half the unit
        assert a.qs_unacked.size == 1
        a.on_acked(100)         # fully acked
        assert a.qs_unacked.size == 0
        assert a.qs_unacked.total == 1

    def test_receiver_counts_whole_units_on_arrival(self):
        a, b, _, clock_b = linked_pair(SyscallUnits)
        a.on_send(100)
        a.on_send(50)
        b.on_arrived(99)
        assert b.qs_unread.size == 0
        b.on_arrived(150)
        assert b.qs_unread.size == 2
        assert b.qs_ackdelay.size == 2

    def test_read_and_ack_drain_receiver_queues(self):
        a, b, _, clock_b = linked_pair(SyscallUnits)
        a.on_send(100)
        b.on_arrived(100)
        clock_b.advance(5)
        b.on_read(100)
        assert b.qs_unread.size == 0
        assert b.qs_unread.total == 1
        b.on_ack_sent(100)
        assert b.qs_ackdelay.size == 0
        assert b.qs_ackdelay.total == 1


class TestPacketUnits:
    def test_each_segment_is_a_unit(self):
        a, b, _, _ = linked_pair(PacketUnits)
        a.on_segment_sent(0, 1448)
        a.on_segment_sent(1448, 1448)
        assert a.qs_unacked.size == 2

    def test_retransmits_do_not_double_count(self):
        a, b, _, _ = linked_pair(PacketUnits)
        a.on_segment_sent(0, 1448)
        a.on_segment_sent(0, 1448)  # same range again
        assert a.qs_unacked.size == 1


class TestByteUnits:
    def test_tracks_bulk_bytes(self):
        a, b, clock_a, _ = linked_pair(ByteUnits)
        a.on_send(1000)
        assert a.qs_unacked.size == 1000
        a.on_acked(400)
        assert a.qs_unacked.size == 600
        assert a.qs_unacked.total == 400

    def test_receiver_side(self):
        a, b, _, _ = linked_pair(ByteUnits)
        b.on_arrived(500)
        assert b.qs_unread.size == 500
        assert b.qs_ackdelay.size == 500
        b.on_read(200)
        assert b.qs_unread.size == 300
        b.on_ack_sent(500)
        assert b.qs_ackdelay.size == 0


class TestHintUnits:
    def test_units_follow_explicit_marks(self):
        a, b, _, _ = linked_pair(HintUnits)
        a.on_send(60)
        a.on_send(40)           # two syscalls, one message
        assert a.qs_unacked.size == 0
        a.mark_message_end()
        assert a.qs_unacked.size == 1
        a.on_acked(100)
        assert a.qs_unacked.size == 0
        b.on_arrived(100)
        assert b.qs_unread.size == 1


class TestAttachUnits:
    def test_attaches_to_socket_pair(self, pair_factory, sim):
        client, server, sock_a, sock_b = pair_factory.build()
        unit_a, unit_b = attach_units(sock_a, sock_b, SyscallUnits)
        assert unit_a in sock_a.instruments
        assert unit_b in sock_b.instruments
        assert unit_a.peer is unit_b

    def test_end_to_end_unit_flow(self, pair_factory, sim):
        """Send two messages through the real stack; the syscall-unit
        queues must see exactly two units complete the journey."""
        from tests.conftest import drain_reader

        client, server, sock_a, sock_b = pair_factory.build()
        unit_a, unit_b = attach_units(sock_a, sock_b, SyscallUnits)
        sock_a.send("m1", 3000)
        sock_a.send("m2", 2000)
        results = {}
        drain_reader(sim, sock_b, 5000, results)
        sim.run(until=10**9)
        assert results["bytes"] == 5000
        assert unit_a.qs_unacked.total == 2
        assert unit_a.qs_unacked.size == 0
        assert unit_b.qs_unread.total == 2
        assert unit_b.qs_ackdelay.size == 0
