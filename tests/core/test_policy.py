"""Tests for the batching objectives (§5 policies)."""

from __future__ import annotations

import pytest

from repro.core.policy import (
    LatencyFirstPolicy,
    PerfSample,
    ThroughputUnderSloPolicy,
)


def sample(latency_us: float | None, tput: float = 0.0) -> PerfSample:
    latency = None if latency_us is None else latency_us * 1000
    return PerfSample(latency_ns=latency, throughput_per_sec=tput)


class TestLatencyFirst:
    def test_prefers_lower_latency(self):
        policy = LatencyFirstPolicy()
        assert policy.better(sample(100), sample(200))
        assert not policy.better(sample(200), sample(100))

    def test_throughput_breaks_ties(self):
        policy = LatencyFirstPolicy()
        assert policy.better(sample(100, tput=2.0), sample(100, tput=1.0))

    def test_unknown_latency_ranks_last(self):
        policy = LatencyFirstPolicy()
        assert policy.better(sample(10_000), sample(None))


class TestThroughputUnderSlo:
    def test_slo_meeting_beats_violation(self):
        policy = ThroughputUnderSloPolicy(slo_ns=500_000)
        assert policy.better(sample(400, tput=1.0), sample(600, tput=100.0))

    def test_within_slo_higher_throughput_wins(self):
        policy = ThroughputUnderSloPolicy(slo_ns=500_000)
        assert policy.better(sample(499, tput=2.0), sample(100, tput=1.0))

    def test_both_violating_lower_latency_wins(self):
        policy = ThroughputUnderSloPolicy(slo_ns=500_000)
        assert policy.better(sample(600), sample(900))

    def test_unknown_latency_ranks_below_violators(self):
        policy = ThroughputUnderSloPolicy(slo_ns=500_000)
        assert policy.better(sample(10_000), sample(None))

    def test_invalid_slo_rejected(self):
        with pytest.raises(ValueError):
            ThroughputUnderSloPolicy(slo_ns=0)
