"""Tests for the three-queue end-to-end estimator (§3.2)."""

from __future__ import annotations

import pytest

from repro.core.estimator import (
    E2EEstimator,
    EstimateSample,
    QueueDelays,
    combine_estimates,
)
from repro.core.qstate import QueueState
from repro.errors import EstimationError
from tests.core.test_qstate import ManualClock


class FakeEndpoint:
    """A stand-in exposing the three queue states."""

    def __init__(self, clock):
        self.qs_unacked = QueueState(clock)
        self.qs_unread = QueueState(clock)
        self.qs_ackdelay = QueueState(clock)


@pytest.fixture
def clock():
    return ManualClock()


@pytest.fixture
def endpoints(clock):
    return FakeEndpoint(clock), FakeEndpoint(clock)


class TestEstimatorConstruction:
    def test_requires_exactly_one_remote_source(self, endpoints):
        local, remote = endpoints
        with pytest.raises(EstimationError):
            E2EEstimator(local)
        with pytest.raises(EstimationError):
            E2EEstimator(local, remote=remote, exchange=object())

    def test_first_sample_is_baseline(self, clock, endpoints):
        local, remote = endpoints
        estimator = E2EEstimator(local, remote=remote)
        assert estimator.sample() is None


class TestOracleEstimates:
    def test_combines_four_queue_delays(self, clock, endpoints):
        local, remote = endpoints
        estimator = E2EEstimator(local, remote=remote)
        estimator.sample()

        # Local unacked: 1 item for 100 ns.
        local.qs_unacked.track(1)
        clock.advance(100)
        local.qs_unacked.track(-1)
        # Local unread: 1 item for 10 ns.
        local.qs_unread.track(1)
        clock.advance(10)
        local.qs_unread.track(-1)
        # Remote unread: 1 item for 30 ns.
        remote.qs_unread.track(1)
        clock.advance(30)
        remote.qs_unread.track(-1)
        # Remote ackdelay: 1 item for 20 ns.
        remote.qs_ackdelay.track(1)
        clock.advance(20)
        remote.qs_ackdelay.track(-1)
        clock.advance(1)

        sample = estimator.sample()
        assert sample is not None and sample.defined
        # L = unacked - ackdelay_remote + unread_local + unread_remote
        assert sample.latency_ns == pytest.approx(100 - 20 + 10 + 30)
        assert sample.complete

    def test_missing_remote_unread_gives_undefined(self, clock, endpoints):
        local, remote = endpoints
        estimator = E2EEstimator(local, remote=remote)
        estimator.sample()
        local.qs_unacked.track(1)
        clock.advance(100)
        local.qs_unacked.track(-1)
        local.qs_unread.track(1)
        clock.advance(10)
        local.qs_unread.track(-1)
        clock.advance(1)
        sample = estimator.sample()
        assert sample is not None
        assert not sample.defined

    def test_missing_ackdelay_counts_as_zero_incomplete(self, clock, endpoints):
        local, remote = endpoints
        estimator = E2EEstimator(local, remote=remote)
        estimator.sample()
        local.qs_unacked.track(1)
        clock.advance(100)
        local.qs_unacked.track(-1)
        local.qs_unread.track(1)
        clock.advance(10)
        local.qs_unread.track(-1)
        remote.qs_unread.track(1)
        clock.advance(30)
        remote.qs_unread.track(-1)
        clock.advance(1)
        sample = estimator.sample()
        assert sample.defined
        assert sample.latency_ns == pytest.approx(140)
        assert not sample.complete

    def test_throughput_from_unacked_departures(self, clock, endpoints):
        local, remote = endpoints
        estimator = E2EEstimator(local, remote=remote)
        estimator.sample()
        for _ in range(10):
            local.qs_unacked.track(1)
            clock.advance(100)
            local.qs_unacked.track(-1)
        sample = estimator.sample()
        # 10 departures over 1000 ns = 10^7 per second.
        assert sample.throughput_per_sec == pytest.approx(1e16 / 1e9)


class TestCombineEstimates:
    def _sample(self, latency):
        return EstimateSample(
            latency_ns=latency,
            throughput_per_sec=0.0,
            local=QueueDelays(None, None, None),
            remote=None,
            interval_ns=1,
            complete=True,
        )

    def test_max_of_two(self):
        assert combine_estimates(self._sample(10.0), self._sample(20.0)) == 20.0

    def test_handles_none_and_undefined(self):
        assert combine_estimates(None, None) is None
        assert combine_estimates(self._sample(None), None) is None
        assert combine_estimates(self._sample(None), self._sample(5.0)) == 5.0
