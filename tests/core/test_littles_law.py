"""Tests for GETAVGS (Algorithm 2)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.littles_law import get_avgs, try_get_avgs
from repro.core.qstate import QueueSnapshot, QueueState
from repro.errors import EstimationError
from repro.units import SEC
from tests.core.test_qstate import ManualClock


class TestGetAvgs:
    def test_paper_example(self):
        """1 item for 10us then 4 items for 20us: Q=3."""
        prev = QueueSnapshot(time=0, total=0, integral=0)
        now = QueueSnapshot(time=30, total=5, integral=90)
        avgs = get_avgs(prev, now)
        assert avgs.occupancy == pytest.approx(3.0)
        assert avgs.latency_ns == pytest.approx(90 / 5)

    def test_throughput_is_departures_per_second(self):
        prev = QueueSnapshot(time=0, total=0, integral=0)
        now = QueueSnapshot(time=SEC, total=1000, integral=0)
        avgs = get_avgs(prev, now)
        assert avgs.throughput_per_sec == pytest.approx(1000.0)

    def test_no_departures_gives_undefined_latency(self):
        prev = QueueSnapshot(time=0, total=0, integral=0)
        now = QueueSnapshot(time=100, total=0, integral=500)
        avgs = get_avgs(prev, now)
        assert avgs.latency_ns is None
        assert not avgs.defined
        assert avgs.throughput_per_sec == 0.0

    def test_zero_interval_rejected(self):
        snap = QueueSnapshot(time=5, total=0, integral=0)
        with pytest.raises(EstimationError):
            get_avgs(snap, snap)

    def test_reversed_snapshots_rejected(self):
        prev = QueueSnapshot(time=10, total=0, integral=0)
        now = QueueSnapshot(time=5, total=0, integral=0)
        with pytest.raises(EstimationError):
            get_avgs(prev, now)

    def test_mismatched_queues_rejected(self):
        prev = QueueSnapshot(time=0, total=100, integral=0)
        now = QueueSnapshot(time=10, total=50, integral=0)
        with pytest.raises(EstimationError):
            get_avgs(prev, now)

    def test_latency_is_occupancy_over_throughput(self):
        """D = Q / lambda (Little's law restated)."""
        prev = QueueSnapshot(time=0, total=0, integral=0)
        now = QueueSnapshot(time=200, total=8, integral=640)
        avgs = get_avgs(prev, now)
        lam = avgs.throughput_per_sec / SEC  # per ns
        assert avgs.latency_ns == pytest.approx(avgs.occupancy / lam)


class TestLittlesLawEndToEnd:
    """Feed synthetic arrival/departure traces and verify Little's law
    recovers the exact average delay."""

    def test_fifo_queue_known_delays(self):
        """Items spend exactly known times; GETAVGS must match their mean."""
        clock = ManualClock()
        qs = QueueState(clock)
        start = qs.snapshot()
        # Item A: in at t=0, out at t=50 (delay 50)
        # Item B: in at t=10, out at t=30 (delay 20)
        qs.track(1)
        clock.advance(10)
        qs.track(1)
        clock.advance(20)
        qs.track(-1)
        clock.advance(20)
        qs.track(-1)
        end = qs.snapshot()
        avgs = get_avgs(start, end)
        assert avgs.latency_ns == pytest.approx((50 + 20) / 2)

    @given(
        st.lists(
            st.tuples(st.integers(1, 100), st.integers(1, 100)),
            min_size=1,
            max_size=30,
        )
    )
    def test_sequential_items_exact(self, items):
        """Non-overlapping items: average delay == mean residence time."""
        clock = ManualClock()
        qs = QueueState(clock)
        start = qs.snapshot()
        delays = []
        for residence, gap in items:
            qs.track(1)
            clock.advance(residence)
            qs.track(-1)
            delays.append(residence)
            clock.advance(gap)
        end = qs.snapshot()
        avgs = get_avgs(start, end)
        assert avgs.latency_ns == pytest.approx(sum(delays) / len(delays))

    @given(st.integers(1, 20), st.integers(1, 1000))
    def test_batch_of_n_items_same_delay(self, n, residence):
        """n items entering and leaving together each have the same delay."""
        clock = ManualClock()
        qs = QueueState(clock)
        start = qs.snapshot()
        qs.track(n)
        clock.advance(residence)
        qs.track(-n)
        avgs = get_avgs(start, qs.snapshot())
        assert avgs.latency_ns == pytest.approx(residence)


class TestTryGetAvgs:
    """The graceful variant: None for every interval get_avgs rejects."""

    def test_same_instant_yields_none(self):
        snap = QueueSnapshot(time=5, total=3, integral=7)
        assert try_get_avgs(snap, snap) is None

    def test_reversed_snapshots_yield_none(self):
        prev = QueueSnapshot(time=10, total=0, integral=0)
        now = QueueSnapshot(time=5, total=0, integral=0)
        assert try_get_avgs(prev, now) is None

    def test_backwards_counters_yield_none(self):
        prev = QueueSnapshot(time=0, total=100, integral=50)
        assert try_get_avgs(prev, QueueSnapshot(10, 90, 50)) is None
        assert try_get_avgs(prev, QueueSnapshot(10, 100, 40)) is None

    def test_agrees_with_get_avgs_on_valid_intervals(self):
        prev = QueueSnapshot(time=0, total=0, integral=0)
        now = QueueSnapshot(time=30, total=5, integral=90)
        assert try_get_avgs(prev, now) == get_avgs(prev, now)

    @given(
        st.integers(0, 10**6), st.integers(0, 10**6), st.integers(0, 10**9),
        st.integers(-100, 10**6), st.integers(-5, 10**4),
        st.integers(-10**6, 10**9),
    )
    def test_never_raises(self, t0, dtotal, integral, dt, d2total, dintegral):
        prev = QueueSnapshot(time=t0, total=dtotal, integral=integral)
        now = QueueSnapshot(
            time=t0 + dt, total=dtotal + d2total, integral=integral + dintegral,
        )
        result = try_get_avgs(prev, now)
        if dt <= 0 or d2total < 0 or dintegral < 0:
            assert result is None
        elif result.latency_ns is not None:
            assert result.latency_ns >= 0
