"""Tests for the wire metadata exchange (§3.2 format, §5 cadence)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.exchange import (
    OPTION_E2E,
    OPTION_HINT,
    MetadataExchange,
    PeerSnapshots,
    WirePeerState,
    WireQueueState,
    WireScale,
    _CounterUnwrapper,
    _QueueUnwrapper,
)
from repro.core.qstate import QueueSnapshot, QueueState
from repro.errors import EstimationError


class TestWireEncoding:
    def test_queue_state_is_12_bytes(self):
        wire = WireQueueState(1, 2, 3)
        assert len(wire.encode()) == 12
        assert WireQueueState.WIRE_BYTES == 12

    def test_peer_state_is_36_bytes(self):
        """The paper: 36 bytes per exchange (3 queues x 3 counters x 4B)."""
        state = WirePeerState(
            WireQueueState(1, 2, 3),
            WireQueueState(4, 5, 6),
            WireQueueState(7, 8, 9),
        )
        assert len(state.encode()) == 36
        assert WirePeerState.WIRE_BYTES == 36

    def test_roundtrip(self):
        state = WirePeerState(
            WireQueueState(10, 20, 30),
            WireQueueState(40, 50, 60),
            WireQueueState(70, 80, 90),
        )
        decoded = WirePeerState.decode(state.encode())
        assert decoded.unacked == state.unacked
        assert decoded.unread == state.unread
        assert decoded.ackdelay == state.ackdelay

    def test_decode_wrong_length_rejected(self):
        with pytest.raises(EstimationError):
            WireQueueState.decode(b"short")
        with pytest.raises(EstimationError):
            WirePeerState.decode(b"\x00" * 35)

    @given(st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1),
           st.integers(0, 2**32 - 1))
    def test_roundtrip_any_counters(self, t, total, integral):
        wire = WireQueueState(t, total, integral)
        assert WireQueueState.decode(wire.encode()) == wire


class TestCounterUnwrapping:
    def test_monotone_without_wrap(self):
        unwrapper = _CounterUnwrapper()
        assert unwrapper.update(100) == 100
        assert unwrapper.update(250) == 250

    def test_wraparound(self):
        unwrapper = _CounterUnwrapper()
        unwrapper.update(2**32 - 10)
        assert unwrapper.update(5) == 2**32 - 10 + 15

    @given(st.lists(st.integers(0, 2**31), min_size=1, max_size=50))
    def test_unwrap_recovers_cumulative_sums(self, increments):
        """Feeding wrapped cumulative sums recovers the true values as
        long as each step is below 2^32."""
        unwrapper = _CounterUnwrapper()
        true = 0
        unwrapper.update(0)
        for inc in increments:
            true += inc
            assert unwrapper.update(true % (2**32)) == true

    def test_blackout_across_wrap_is_a_huge_forward_jump(self):
        """The raw unwrapper cannot detect a blackout.  A gap of more
        than 2^31 ticks still unwraps to the true (huge) forward delta,
        and a gap past the full modulus aliases into a small step — the
        exchange-level ``max_gap_ns`` check plus rebaseline exists
        precisely because modular unwrapping alone cannot tell."""
        unwrapper = _CounterUnwrapper()
        unwrapper.update(1_000)
        gap = 2**31 + 12_345
        assert unwrapper.preview((1_000 + gap) % 2**32) == 1_000 + gap
        # Beyond the modulus the delta aliases: indistinguishable from
        # a small step, so the committed value would be silently wrong.
        assert unwrapper.preview((1_000 + 2**32 + 7) % 2**32) == 1_000 + 7


class TestQueueUnwrapper:
    def test_scaling_roundtrip_within_resolution(self):
        scale = WireScale(time_unit_ns=1_000, integral_shift=10)
        snap = QueueSnapshot(time=5_000_000, total=1234,
                             integral=700_000_000)
        wire = WireQueueState(*scale.pack_snapshot(snap))
        unwrapped = _QueueUnwrapper(scale).update(wire)
        assert unwrapped.time == snap.time
        assert unwrapped.total == snap.total
        # Integral resolution: time_unit * 2^shift.
        assert abs(unwrapped.integral - snap.integral) < 1_000 * 1024


class FakeClock:
    def __init__(self):
        self.now = 0

    def __call__(self):
        return self.now


class TestMetadataExchange:
    def _make(self, sim_factory, period_ns=1_000_000):
        from repro.sim.loop import Simulator

        sim = Simulator()

        class FakeSocket:
            def __init__(self, clock):
                self.qs_unacked = QueueState(clock)
                self.qs_unread = QueueState(clock)
                self.qs_ackdelay = QueueState(clock)
                self.exchange = None

        sock = FakeSocket(lambda: sim.now)
        exchange = MetadataExchange(sim, sock, period_ns=period_ns)
        return sim, sock, exchange

    def test_attaches_option_when_due(self):
        sim, sock, exchange = self._make(None)

        class Seg:
            options = {}

        seg = Seg()
        seg.options = {}
        exchange.on_transmit(seg)
        assert OPTION_E2E in seg.options
        assert exchange.states_sent == 1
        assert exchange.option_bytes_sent == 36

    def test_respects_period(self):
        sim, sock, exchange = self._make(None, period_ns=1_000)

        class Seg:
            def __init__(self):
                self.options = {}

        first, second = Seg(), Seg()
        exchange.on_transmit(first)
        exchange.on_transmit(second)
        assert OPTION_E2E in first.options
        assert OPTION_E2E not in second.options

    def test_on_demand_overrides_period(self):
        sim, sock, exchange = self._make(None, period_ns=10**12)

        class Seg:
            def __init__(self):
                self.options = {}

        first, second, third = Seg(), Seg(), Seg()
        exchange.on_transmit(first)      # initial send
        exchange.on_transmit(second)     # suppressed by period
        exchange.request()
        exchange.on_transmit(third)      # demanded
        assert OPTION_E2E in first.options
        assert OPTION_E2E not in second.options
        assert OPTION_E2E in third.options

    def test_receive_shifts_prev_and_cur(self):
        sim, sock, exchange = self._make(None)
        sock.qs_unacked.track(3)
        state_a = WirePeerState.capture(sock, exchange.scale)
        sim.call_after(1000, lambda: None)
        sim.run()
        state_b = WirePeerState.capture(sock, exchange.scale)
        exchange.on_receive({OPTION_E2E: state_a})
        assert exchange.remote_cur is not None
        assert exchange.remote_prev is None
        exchange.on_receive({OPTION_E2E: state_b})
        assert isinstance(exchange.remote_prev, PeerSnapshots)
        assert exchange.remote_cur.unacked.time >= exchange.remote_prev.unacked.time

    def test_invalid_period_rejected(self):
        with pytest.raises(EstimationError):
            self._make(None, period_ns=0)

    def test_blackout_across_wrap_rebaselines(self):
        """A blackout longer than the wire-time modulus (> 2^32 us, so
        the 32-bit microsecond counter wraps mid-gap) must end in a
        rebaseline, not a committed interval spanning a bogus delta.

        With ``max_gap_ns`` set, every post-blackout state is rejected
        (the unwrapped dt is implausibly huge); after REBASELINE_AFTER
        consecutive rejections the state is adopted as a fresh baseline
        with ``remote_prev`` cleared, so no estimator interval ever
        spans the jump, and the next regular state yields a sane delta.
        """
        from repro.sim.loop import Simulator
        from repro.units import msecs

        sim = Simulator()

        class FakeSocket:
            def __init__(self):
                self.qs_unacked = QueueState(lambda: sim.now)
                self.qs_unread = QueueState(lambda: sim.now)
                self.qs_ackdelay = QueueState(lambda: sim.now)
                self.exchange = None

        sock = FakeSocket()
        exchange = MetadataExchange(
            sim, sock, period_ns=msecs(1), max_gap_ns=msecs(100)
        )

        def advance(delta_ns):
            sim.call_after(delta_ns, lambda: None)
            sim.run()

        def feed():
            exchange.on_receive(
                {OPTION_E2E: WirePeerState.capture(sock, exchange.scale)}
            )

        sock.qs_unacked.track(3)
        feed()                         # first state: baseline
        advance(msecs(1))
        feed()                         # healthy cadence: accepted
        assert exchange.states_rejected == 0
        assert exchange.remote_prev is not None
        healthy_cur = exchange.remote_cur

        # Blackout: > 2^32 us of silence, wrapping the wire time
        # counter.  5e9 us unwraps (mod 2^32) to ~7e8 us — far past
        # max_gap_ns either way.
        blackout_ns = 5 * 10**9 * 1_000
        assert blackout_ns // 1_000 > 2**32
        advance(blackout_ns)

        for expected_rejections in (1, 2):
            feed()
            assert exchange.states_rejected == expected_rejections
            assert exchange.rebaselines == 0
            # Rejections leave the retained pair untouched.
            assert exchange.remote_cur is healthy_cur
            advance(msecs(1))

        feed()                         # third strike: rebaseline
        assert exchange.states_rejected == 3
        assert exchange.rebaselines == 1
        assert exchange.remote_prev is None
        assert exchange.remote_cur is not healthy_cur

        rebaselined_cur = exchange.remote_cur
        advance(msecs(1))
        feed()                         # back to normal cadence
        assert exchange.states_rejected == 3
        assert exchange.remote_prev is rebaselined_cur
        dt = exchange.remote_cur.unacked.time - exchange.remote_prev.unacked.time
        assert dt == msecs(1)          # sane delta, not the bogus jump

    def test_hint_session_rides_along(self):
        from repro.core.hints import HintSession
        from repro.sim.loop import Simulator

        sim = Simulator()

        class FakeSocket:
            def __init__(self):
                self.qs_unacked = QueueState(lambda: sim.now)
                self.qs_unread = QueueState(lambda: sim.now)
                self.qs_ackdelay = QueueState(lambda: sim.now)
                self.exchange = None

        sock = FakeSocket()
        hints = HintSession(lambda: sim.now)
        exchange = MetadataExchange(sim, sock, period_ns=1000, hint_session=hints)

        class Seg:
            def __init__(self):
                self.options = {}

        seg = Seg()
        hints.create(2)
        exchange.on_transmit(seg)
        assert OPTION_HINT in seg.options
        assert exchange.option_bytes_sent == 36 + 12
