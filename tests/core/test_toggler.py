"""Tests for the ε-greedy dynamic toggler (§5)."""

from __future__ import annotations

import pytest

from repro.core.policy import LatencyFirstPolicy, PerfSample
from repro.core.toggler import NagleToggler, TogglerConfig
from repro.errors import EstimationError
from repro.sim.loop import Simulator
from repro.sim.rng import RngRegistry


def make_toggler(sim, latency_by_mode, epsilon=0.0, min_samples=1,
                 tick_ns=1000, initial_mode=False, alpha=1.0):
    """A toggler whose environment has a fixed latency per mode."""
    applied = []
    current = {"mode": initial_mode}

    def sample_fn():
        return PerfSample(
            latency_ns=latency_by_mode[current["mode"]],
            throughput_per_sec=1.0,
        )

    def apply_fn(mode):
        applied.append((sim.now, mode))
        current["mode"] = mode

    toggler = NagleToggler(
        sim,
        sample_fn=sample_fn,
        apply_fn=apply_fn,
        policy=LatencyFirstPolicy(),
        rng=RngRegistry(7).stream("toggler"),
        config=TogglerConfig(
            tick_ns=tick_ns, epsilon=epsilon, alpha=alpha,
            min_samples=min_samples,
        ),
        initial_mode=initial_mode,
    )
    return toggler, applied, current


class TestTogglerConfig:
    def test_validation(self):
        with pytest.raises(EstimationError):
            TogglerConfig(tick_ns=0).validate()
        with pytest.raises(EstimationError):
            TogglerConfig(epsilon=1.5).validate()
        with pytest.raises(EstimationError):
            TogglerConfig(min_samples=0).validate()


class TestTogglerLearning:
    def test_settles_on_better_mode_when_on_wins(self):
        sim = Simulator()
        toggler, applied, current = make_toggler(
            sim, {False: 1_000_000, True: 100_000}
        )
        toggler.start()
        sim.run(until=50_000)
        assert toggler.mode is True
        # After exploring both arms it stays on the winner (with
        # epsilon=0 the tail of the history is all Nagle-on).
        tail = toggler.history[-5:]
        assert all(record.mode for record in tail)

    def test_settles_on_better_mode_when_off_wins(self):
        sim = Simulator()
        toggler, applied, current = make_toggler(
            sim, {False: 100_000, True: 1_000_000}, initial_mode=True
        )
        toggler.start()
        sim.run(until=50_000)
        assert toggler.mode is False

    def test_explores_both_arms_before_committing(self):
        sim = Simulator()
        toggler, applied, _ = make_toggler(
            sim, {False: 100, True: 100}, min_samples=3
        )
        toggler.start()
        sim.run(until=20_000)
        assert toggler._stats[False].samples >= 3
        assert toggler._stats[True].samples >= 3

    def test_epsilon_keeps_exploring(self):
        sim = Simulator()
        toggler, applied, _ = make_toggler(
            sim, {False: 1_000_000, True: 100_000}, epsilon=0.5
        )
        toggler.start()
        sim.run(until=200_000)
        explored = [record for record in toggler.history if record.explored]
        assert len(explored) > 10

    def test_undefined_samples_do_not_update_stats(self):
        sim = Simulator()
        calls = {"n": 0}

        def sample_fn():
            calls["n"] += 1
            return None

        toggler = NagleToggler(
            sim,
            sample_fn=sample_fn,
            apply_fn=lambda mode: None,
            policy=LatencyFirstPolicy(),
            rng=RngRegistry(7).stream("t"),
            config=TogglerConfig(tick_ns=1000),
        )
        toggler.start()
        sim.run(until=10_000)
        assert calls["n"] >= 5
        assert toggler._stats[False].samples == 0
        assert toggler._stats[True].samples == 0

    def test_stop_cancels_ticks(self):
        sim = Simulator()
        toggler, _, _ = make_toggler(sim, {False: 100, True: 100})
        toggler.start()
        sim.run(until=5_000)
        ticks = len(toggler.history)
        toggler.stop()
        sim.run(until=50_000)
        assert len(toggler.history) == ticks

    def test_history_records_every_tick(self):
        sim = Simulator()
        toggler, _, _ = make_toggler(sim, {False: 100, True: 50}, tick_ns=1000)
        toggler.start()
        sim.run(until=10_500)
        assert len(toggler.history) == 10

    def test_smoothed_view(self):
        sim = Simulator()
        toggler, _, _ = make_toggler(sim, {False: 100.0, True: 50.0})
        toggler.start()
        sim.run(until=20_000)
        assert toggler.smoothed(False).latency_ns == pytest.approx(100.0)
        assert toggler.smoothed(True).latency_ns == pytest.approx(50.0)
