"""The streaming classifier: segmentation, determinism, purity."""

from __future__ import annotations

import random

import pytest

from repro.diagnose import StreamingClassifier, diagnose_records
from repro.errors import DiagnosisError
from tests.diagnose.conftest import estimator_sample, header, tcp_tx


class TestInputValidation:
    def test_non_dict_rejected(self):
        with pytest.raises(DiagnosisError):
            StreamingClassifier().feed("not a record")

    def test_missing_common_fields_rejected(self):
        with pytest.raises(DiagnosisError):
            StreamingClassifier().feed({"type": "tcp.event"})
        with pytest.raises(DiagnosisError):
            StreamingClassifier().feed({"t": 0})


class TestRunSegmentation:
    def test_time_reset_starts_new_run(self):
        report = diagnose_records([
            header(),
            tcp_tx(1000),
            tcp_tx(2000),
            tcp_tx(500),   # clock went backwards: a new run began
            tcp_tx(1500),
        ])
        assert len(report.runs) == 2
        assert report.runs[0].records == 2
        assert report.runs[1].records == 2

    def test_header_label_captured(self):
        report = diagnose_records([header(label="my-sweep"), tcp_tx(1)])
        assert report.label == "my-sweep"

    def test_midstream_header_forces_new_run(self):
        # A rewritten file replays a header mid-stream; even if the new
        # run's clock happens to continue forward, it is a new run.
        report = diagnose_records([
            header(),
            tcp_tx(1000),
            header(label="rewritten"),
            tcp_tx(2000),
        ])
        assert len(report.runs) == 2

    def test_monotone_stream_is_one_run(self):
        report = diagnose_records([header()] + [
            tcp_tx(t) for t in range(0, 10_000, 1000)
        ])
        assert len(report.runs) == 1


class TestDeterminism:
    def test_chunked_feeding_is_byte_identical(self, clean_records):
        offline = diagnose_records(clean_records).to_canonical()
        for chunk in (1, 7, 997):
            classifier = StreamingClassifier()
            for i in range(0, len(clean_records), chunk):
                classifier.feed_many(clean_records[i:i + chunk])
            assert classifier.report().to_canonical() == offline, (
                f"chunk size {chunk} diverged from the offline pass"
            )

    def test_fuzzed_chunking_is_byte_identical(self, chaos_traces):
        # Random chunk boundaries over a fault-heavy stream (the case
        # with the most classifier state in play).
        records, _ = chaos_traces["bursty-loss"]
        offline = diagnose_records(records).to_canonical()
        rng = random.Random(0xD1A6)
        for _ in range(5):
            classifier = StreamingClassifier()
            i = 0
            while i < len(records):
                step = rng.randint(1, 2000)
                classifier.feed_many(records[i:i + step])
                i += step
            assert classifier.report().to_canonical() == offline

    def test_midstream_reports_do_not_perturb(self, clean_records):
        offline = diagnose_records(clean_records).to_canonical()
        classifier = StreamingClassifier()
        for i, record in enumerate(clean_records):
            classifier.feed(record)
            if i % 500 == 0:
                classifier.report()  # snapshot must not mutate state
        assert classifier.report().to_canonical() == offline

    def test_report_is_repeatable(self, clean_records):
        classifier = StreamingClassifier()
        classifier.feed_many(clean_records)
        assert (classifier.report().to_canonical()
                == classifier.report().to_canonical())


class TestRunsProperty:
    def test_counts_open_run(self):
        classifier = StreamingClassifier()
        assert classifier.runs == 0
        classifier.feed(tcp_tx(1))
        assert classifier.runs == 1
        classifier.feed(tcp_tx(0))  # reset
        assert classifier.runs == 2


class TestIgnoredTypes:
    def test_fault_verdicts_never_influence_findings(self):
        # Detection must not read the injector's own narration.
        base = [header()] + [
            tcp_tx(t) for t in range(0, 40_000_000, 4_000_000)
        ]
        verdicts = [
            {"t": t, "type": "fault.verdict", "src": "link.forward",
             "layer": "link", "action": "loss-drop"}
            for t in range(0, 40_000_000, 1_000_000)
        ]
        with_verdicts = sorted(base + verdicts, key=lambda r: r["t"])
        findings = diagnose_records(with_verdicts).findings
        assert findings == []
