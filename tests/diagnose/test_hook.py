"""DiagnosisHook: tee transparency, attribution, supervisor wiring."""

from __future__ import annotations

import pytest

from repro.diagnose import DiagnosisHook
from repro.diagnose.hook import _TeeSink
from repro.errors import DiagnosisError
from repro.obs import Tracer
from repro.obs.sinks import ListSink
from repro.parallel import _check_diagnosis
from repro.supervise import Supervisor
from repro.supervise.outcome import KIND_DIAGNOSIS
from tests.diagnose.conftest import header, tcp_tx, toggler_decision


def _run_records(t0=0, *, retransmit=False):
    """One run segment: a header plus a short burst of traffic."""
    records = [header()]
    records += [
        tcp_tx(t0 + t * 1_000_000, retransmit=retransmit and t % 4 == 0)
        for t in range(1, 40)
    ]
    return records


class TestTeeSink:
    def test_records_pass_through_unchanged(self):
        plain, teed = ListSink(), ListSink()
        hook = DiagnosisHook()
        tee = _TeeSink(teed, hook.classifier)
        for record in _run_records(retransmit=True):
            plain.append(record)
            tee.append(record)
        assert list(teed.records) == list(plain.records)
        assert hook.classifier.records == len(plain.records)

    def test_records_property_passes_through(self):
        inner = ListSink()
        tee = _TeeSink(inner, DiagnosisHook().classifier)
        tee.append(header())
        assert tee.records is inner.records

    def test_close_closes_inner(self):
        class _Closeable(ListSink):
            closed = False

            def close(self):
                self.closed = True

        inner = _Closeable()
        _TeeSink(inner, DiagnosisHook().classifier).close()
        assert inner.closed


class TestAttach:
    def test_attach_tees_the_tracer(self):
        tracer = Tracer(ListSink())
        hook = DiagnosisHook()
        hook.attach(tracer)
        assert isinstance(tracer.sink, _TeeSink)

    def test_attach_is_idempotent_per_tracer(self):
        tracer = Tracer(ListSink())
        hook = DiagnosisHook()
        hook.attach(tracer)
        hook.attach(tracer)
        tracer.sink.append(header())
        # Double-teed would feed the classifier the record twice.
        assert hook.classifier.records == 1

    def test_attach_covers_multiple_tracers(self):
        hook = DiagnosisHook()
        tracers = [Tracer(ListSink()), Tracer(ListSink())]
        for tracer in tracers:
            hook.attach(tracer)
        tracers[0].sink.append(header())
        tracers[1].sink.append(tcp_tx(1))
        assert hook.classifier.records == 2


class TestAttribution:
    def test_deltas_credit_each_job_once(self):
        hook = DiagnosisHook()
        # Job 0's segment has loss; job 1's is clean.
        for record in _run_records(retransmit=True):
            hook.classifier.feed(record)
        first = hook.job_completed(0, "job-0")
        assert first.findings > 0
        assert "loss" in first.classes

        for record in _run_records():
            hook.classifier.feed(record)
        second = hook.job_completed(1, "job-1")
        assert second.findings == 0
        assert second.describe() == "clean"
        assert len(hook.verdicts) == 2

    def test_pathological_flag(self):
        hook = DiagnosisHook()
        hook.classifier.feed(header())
        for t in range(1, 12):
            hook.classifier.feed(
                toggler_decision(t * 4_000_000, phase="loss-freeze")
            )
        verdict = hook.job_completed(0, "job-0")
        assert verdict.pathological
        assert "PATHOLOGICAL" in verdict.describe()


class TestSupervisorIntegration:
    def _campaign(self, fault_jobs, quarantine):
        """Run a 3-job serial campaign; job indices in ``fault_jobs``
        emit a pathological toggler segment into the shared tracer."""
        tracer = Tracer(ListSink())
        hook = DiagnosisHook(quarantine=quarantine)
        hook.attach(tracer)
        supervisor = Supervisor(workers=1, tracer=tracer, diagnosis=hook)

        def job(index):
            tracer.sink.append(header(label=f"job-{index}"))
            for t in range(1, 12):
                if index in fault_jobs:
                    tracer.sink.append(
                        toggler_decision(t * 4_000_000, phase="loss-freeze")
                    )
                else:
                    tracer.sink.append(tcp_tx(t * 4_000_000))
            return index

        outcomes = supervisor.run(job, [0, 1, 2])
        return supervisor, hook, tracer, outcomes

    def test_clean_campaign_completes_with_verdicts(self):
        supervisor, hook, tracer, outcomes = self._campaign(set(), False)
        assert all(o.ok for o in outcomes)
        assert [v.findings for v in hook.verdicts] == [0, 0, 0]
        verdict_records = [
            r for r in tracer.records if r["type"] == "diagnosis.verdict"
        ]
        assert len(verdict_records) == 3
        assert supervisor.metrics.counter("diagnose.findings").value == 0
        assert supervisor.metrics.counter("diagnose.flagged_jobs").value == 0

    def test_flagging_without_quarantine_still_completes(self):
        supervisor, hook, tracer, outcomes = self._campaign({1}, False)
        assert all(o.ok for o in outcomes)
        assert hook.verdicts[1].pathological
        assert supervisor.metrics.counter("diagnose.flagged_jobs").value == 1
        assert supervisor.metrics.counter("diagnose.quarantined").value == 0

    def test_pathological_verdict_quarantines(self):
        supervisor, hook, tracer, outcomes = self._campaign({1}, True)
        assert outcomes[0].ok and outcomes[2].ok
        assert not outcomes[1].ok
        assert outcomes[1].kind == KIND_DIAGNOSIS
        assert "pathological" in outcomes[1].message
        assert supervisor.metrics.counter("diagnose.quarantined").value == 1
        kinds = [
            r["kind"] for r in tracer.records
            if r["type"] == "job.quarantine"
        ]
        assert KIND_DIAGNOSIS in kinds


class TestCheckDiagnosis:
    def test_requires_a_tracer(self):
        with pytest.raises(DiagnosisError, match="tracer"):
            _check_diagnosis(DiagnosisHook(), None)

    def test_attaches_when_traced(self):
        tracer = Tracer(ListSink())
        hook = DiagnosisHook()
        _check_diagnosis(hook, tracer)
        assert isinstance(tracer.sink, _TeeSink)

    def test_none_is_a_no_op(self):
        _check_diagnosis(None, None)
