"""The ``repro diagnose`` command and the campaign --diagnose flags."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.diagnose import validate_report
from tests.diagnose.conftest import header, tcp_tx


def _write_trace(path, records):
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record) + "\n")


@pytest.fixture()
def lossy_trace(tmp_path):
    path = tmp_path / "lossy.jsonl"
    _write_trace(path, [header(label="cli")] + [
        tcp_tx(t * 1_000_000, retransmit=(t % 5 == 0)) for t in range(1, 60)
    ])
    return path


@pytest.fixture()
def clean_trace(tmp_path):
    path = tmp_path / "clean.jsonl"
    _write_trace(path, [header(label="cli")] + [
        tcp_tx(t * 1_000_000) for t in range(1, 60)
    ])
    return path


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["diagnose", "trace.jsonl"])
        assert args.path == "trace.jsonl"
        assert not args.follow
        assert args.json is None
        assert args.score is None

    def test_fig2_gained_diagnose_flags(self):
        args = build_parser().parse_args(
            ["fig2", "--diagnose", "--quarantine-on-diagnosis"]
        )
        assert args.diagnose
        assert args.quarantine_on_diagnosis


class TestOffline:
    def test_renders_report(self, lossy_trace, capsys):
        assert main(["diagnose", str(lossy_trace)]) == 0
        out = capsys.readouterr().out
        assert "diagnosis" in out
        assert "loss" in out

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["diagnose", str(tmp_path / "absent.jsonl")]) == 1
        assert "unreadable" in capsys.readouterr().err

    def test_validate_mode(self, lossy_trace, capsys):
        assert main(["diagnose", str(lossy_trace), "--validate"]) == 0
        assert "repro-diagnosis-v1 OK" in capsys.readouterr().out

    def test_json_to_stdout_is_valid(self, lossy_trace, capsys):
        assert main(["diagnose", str(lossy_trace), "--json", "-"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert validate_report(document) == []
        assert document["summary"]["findings"] >= 1

    def test_json_to_file(self, lossy_trace, tmp_path, capsys):
        out = tmp_path / "report" / "diagnosis.json"
        assert main(["diagnose", str(lossy_trace), "--json", str(out)]) == 0
        assert validate_report(json.loads(out.read_text())) == []

    def test_expect_clean_passes_on_clean(self, clean_trace, capsys):
        assert main(["diagnose", str(clean_trace), "--expect-clean"]) == 0

    def test_expect_clean_fails_on_findings(self, lossy_trace, capsys):
        assert main(["diagnose", str(lossy_trace), "--expect-clean"]) == 1
        assert "expected a clean trace" in capsys.readouterr().err


class TestScore:
    def _truth(self, tmp_path, episodes):
        path = tmp_path / "robustness.json"
        path.write_text(json.dumps(
            {"schema": "repro-robustness-v1",
             "points": [{"fault_episodes": episodes}]}
        ))
        return path

    def test_detected_episode_passes_gate(self, lossy_trace, tmp_path,
                                          capsys):
        truth = self._truth(tmp_path, [
            {"class": "loss", "target": "link", "start_ns": 5_000_000,
             "end_ns": 55_000_000, "events": 11},
        ])
        code = main(["diagnose", str(lossy_trace), "--score", str(truth),
                     "--min-recall", "0.8"])
        out = capsys.readouterr().out
        assert code == 0
        assert "recall 1.00" in out

    def test_missed_episode_fails_gate(self, clean_trace, tmp_path, capsys):
        truth = self._truth(tmp_path, [
            {"class": "stall", "target": "sock", "start_ns": 5_000_000,
             "end_ns": 55_000_000, "events": 1},
        ])
        code = main(["diagnose", str(clean_trace), "--score", str(truth),
                     "--min-recall", "0.8"])
        assert code == 1
        assert "recall below" in capsys.readouterr().err

    def test_unreadable_truth_fails(self, lossy_trace, tmp_path, capsys):
        code = main(["diagnose", str(lossy_trace), "--score",
                     str(tmp_path / "absent.json")])
        assert code == 1
        assert "unreadable robustness JSON" in capsys.readouterr().err


class TestCampaignFlags:
    def test_diagnose_without_trace_exits(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["fig2", "--diagnose"])
        assert exc.value.code == 2
        assert "--trace" in capsys.readouterr().err

    def test_fig2_diagnose_runs_clean(self, tmp_path, capsys):
        trace = tmp_path / "fig2.jsonl"
        code = main([
            "fig2", "--seeds", "1", "--measure-ms", "20",
            "--trace", str(trace), "--diagnose",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "diagnosis:" in out
        assert "0 finding(s)" in out
