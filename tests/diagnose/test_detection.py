"""Detection quality: synthetic rule triggers and the real recall gate."""

from __future__ import annotations

from repro.diagnose import DiagnosisConfig, diagnose_records, score_report
from repro.units import msecs
from tests.diagnose.conftest import (
    CHAOS_PLANS,
    estimator_sample,
    exchange_recv,
    exchange_send,
    header,
    tcp_tx,
    toggler_decision,
)

#: The acceptance bar: every gated class detected at >= this recall.
MIN_RECALL = 0.8


def _classes(records):
    return {f.cls for f in diagnose_records(records).findings}


class TestSyntheticRules:
    def test_retransmissions_are_loss(self):
        records = [header()] + [
            tcp_tx(t * 1_000_000, retransmit=(t % 5 == 0))
            for t in range(1, 60)
        ]
        assert "loss" in _classes(records)

    def test_clean_traffic_is_not_loss(self):
        records = [header()] + [
            tcp_tx(t * 1_000_000) for t in range(1, 60)
        ]
        assert _classes(records) == set()

    def test_mid_run_silence_is_blackout(self):
        live = [tcp_tx(t * 1_000_000) for t in range(1, 20)]
        dark_then_back = [tcp_tx(t * 1_000_000) for t in range(80, 100)]
        records = [header()] + live + dark_then_back
        assert "blackout" in _classes(records)

    def test_silent_tail_is_blackout(self):
        # Traffic stops, but estimator samples prove the run continued.
        records = [header()]
        records += [tcp_tx(t * 1_000_000) for t in range(1, 20)]
        records += [
            estimator_sample(t * 1_000_000, unacked=10.0)
            for t in range(20, 80, 4)
        ]
        assert "blackout" in _classes(records)

    def test_unread_spike_is_stall(self):
        records = [header()]
        baseline = [
            estimator_sample(t * 4_000_000, unread=3_000.0)
            for t in range(1, 10)
        ]
        spike = [estimator_sample(44_000_000, unread=3_000_000.0)]
        records += baseline + spike
        assert "stall" in _classes(records)

    def test_remote_unread_spike_is_stall(self):
        # A stalled peer is only visible through the exchanged view.
        records = [header()]
        records += [
            estimator_sample(t * 4_000_000, unread=3_000.0,
                             remote_unread=3_000.0)
            for t in range(1, 10)
        ]
        records += [estimator_sample(44_000_000, unread=3_000.0,
                                     remote_unread=3_000_000.0)]
        assert "stall" in _classes(records)

    def test_undelivered_send_is_stale_exchange(self):
        records = [header(), exchange_send(1_000_000, src="conn.0.a")]
        # The peer keeps seeing traffic, but this send never arrives.
        records += [
            tcp_tx(t * 1_000_000) for t in range(2, 30)
        ]
        assert "stale-exchange" in _classes(records)

    def test_delivered_sends_are_clean(self):
        records = [header()]
        for t in range(1, 20):
            records.append(exchange_send(t * 10_000_000, src="conn.0.a"))
            records.append(
                exchange_recv(t * 10_000_000 + 2_000_000, src="conn.0.b",
                              candidate_time=t * 10_000_000)
            )
        assert _classes(records) == set()

    def test_rejected_outcome_is_stale_exchange(self):
        records = [header(),
                   exchange_recv(1_000_000, outcome="rejected")]
        assert "stale-exchange" in _classes(records)

    def test_replayed_counter_is_stale_exchange(self):
        records = [header(),
                   exchange_recv(1_000_000, candidate_time=500_000),
                   exchange_recv(11_000_000, candidate_time=400_000)]
        assert "stale-exchange" in _classes(records)

    def test_frozen_streak_is_toggler_frozen(self):
        records = [header()] + [
            toggler_decision(t * 4_000_000, phase="loss-freeze")
            for t in range(1, 12)
        ]
        assert "toggler-frozen" in _classes(records)

    def test_short_freeze_hold_is_benign(self):
        records = [header()]
        for t in range(1, 40):
            phase = "freeze-hold" if t % 8 < 3 else "apply"
            records.append(toggler_decision(t * 4_000_000, phase=phase))
        assert _classes(records) == set()

    def test_constant_toggling_is_oscillating(self):
        records = [header()] + [
            toggler_decision(t * 4_000_000, toggled=True)
            for t in range(1, 30)
        ]
        assert "toggler-oscillating" in _classes(records)

    def test_occasional_toggles_are_benign(self):
        records = [header()] + [
            toggler_decision(t * 4_000_000, toggled=(t % 9 == 0))
            for t in range(1, 60)
        ]
        assert _classes(records) == set()

    def test_clamped_estimate_is_divergence(self):
        records = [header(),
                   estimator_sample(1_000_000, latency_ns=50_000.0,
                                    clamped="absurd")]
        assert "estimator-divergence" in _classes(records)

    def test_runaway_latency_is_divergence(self):
        records = [header()]
        records += [
            estimator_sample(t * 4_000_000, latency_ns=100_000.0)
            for t in range(1, 10)
        ]
        records += [estimator_sample(44_000_000, latency_ns=50_000_000.0)]
        assert "estimator-divergence" in _classes(records)

    def test_steady_latency_is_benign(self):
        records = [header()]
        for t in range(1, 40):
            records.append(tcp_tx(t * 4_000_000 - 1))
            records.append(
                estimator_sample(t * 4_000_000, latency_ns=100_000.0 + t)
            )
        assert _classes(records) == set()


class TestRecallGate:
    """The headline acceptance: recall per class, zero clean-trace FPs."""

    def test_every_class_detected(self, chaos_traces):
        for plan, cls in CHAOS_PLANS.items():
            records, points = chaos_traces[plan]
            score = score_report(diagnose_records(records), points)
            stats = score["classes"].get(cls)
            assert stats is not None, (
                f"{plan}: ground truth recorded no {cls} episodes"
            )
            assert stats["recall"] >= MIN_RECALL, (
                f"{plan}: {cls} recall {stats['recall']:.2f} "
                f"below {MIN_RECALL}"
            )

    def test_fault_free_runs_are_clean(self, chaos_traces):
        for plan, (records, points) in chaos_traces.items():
            score = score_report(diagnose_records(records), points)
            assert score["clean_run_findings"] == 0, (
                f"{plan}: false positives on the fault-free run: "
                f"{score['false_positives']}"
            )

    def test_no_unexplained_findings(self, chaos_traces):
        for plan, (records, points) in chaos_traces.items():
            score = score_report(diagnose_records(records), points)
            assert score["false_positives"] == [], plan

    def test_ground_truth_episodes_recorded(self, chaos_traces):
        for plan, (_, points) in chaos_traces.items():
            assert points[0].get("fault_episodes") == [], (
                f"{plan}: fault-free point must carry no episodes"
            )
            assert points[1]["fault_episodes"], (
                f"{plan}: faulted point recorded no ground truth"
            )

    def test_stricter_thresholds_still_validate(self, clean_records):
        # The clean gate holds under a moderately tightened config too
        # (margin against threshold drift).
        config = DiagnosisConfig(dead_air_ns=msecs(20), stall_factor=6.0)
        report = diagnose_records(clean_records, config)
        assert report.findings == []
