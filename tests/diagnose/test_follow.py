"""Live tailing: follow_trace with injected time sources."""

from __future__ import annotations

import json

import pytest

from repro.diagnose import diagnose_records, follow_trace
from repro.errors import DiagnosisError
from tests.diagnose.conftest import header, tcp_tx


class _Feeder:
    """Deterministic clock/sleep pair that appends a batch per sleep."""

    def __init__(self, path, batches):
        self.path = path
        self.batches = list(batches)
        self.now = 0.0

    def clock(self):
        return self.now

    def sleep(self, seconds):
        self.now += seconds
        if self.batches:
            self.write(self.batches.pop(0))

    def write(self, batch, *, newline=True):
        with open(self.path, "a") as handle:
            for record in batch[:-1]:
                handle.write(json.dumps(record) + "\n")
            handle.write(json.dumps(batch[-1]) + ("\n" if newline else ""))


def _records():
    return [header(label="follow")] + [
        tcp_tx(t * 1_000_000, retransmit=(t % 5 == 0)) for t in range(1, 60)
    ]


class TestFollowTrace:
    def test_matches_offline_pass(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.touch()
        records = _records()
        feeder = _Feeder(path, [records[:20], records[20:45], records[45:]])
        report = follow_trace(
            path, poll_s=1.0, idle_timeout_s=3.0,
            clock=feeder.clock, sleep=feeder.sleep,
        )
        offline = diagnose_records(records)
        assert report.to_canonical() == offline.to_canonical()
        assert {f.cls for f in report.findings} == {"loss"}

    def test_file_created_after_start(self, tmp_path):
        # The producer may not have opened the file yet when the
        # follower starts; the tail just sees it appear later.
        path = tmp_path / "late.jsonl"
        records = _records()
        feeder = _Feeder(path, [records])
        report = follow_trace(
            path, poll_s=1.0, idle_timeout_s=3.0,
            clock=feeder.clock, sleep=feeder.sleep,
        )
        assert report.to_canonical() == diagnose_records(records).to_canonical()

    def test_torn_write_is_held_back(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.touch()
        records = _records()
        feeder = _Feeder(path, [])
        progress = []

        def on_progress(classifier, new_records):
            progress.append((classifier.records, new_records))

        # First batch ends mid-record (no newline); the completion and
        # the rest arrive on later sleeps.
        half = json.dumps(records[10])
        calls = {"n": 0}

        def sleep(seconds):
            feeder.now += seconds
            calls["n"] += 1
            if calls["n"] == 1:
                feeder.write(records[:10])
                with open(path, "a") as handle:
                    handle.write(half[:7])
            elif calls["n"] == 2:
                with open(path, "a") as handle:
                    handle.write(half[7:] + "\n")
                feeder.write(records[11:])

        report = follow_trace(
            path, poll_s=1.0, idle_timeout_s=3.0,
            on_progress=on_progress,
            clock=feeder.clock, sleep=sleep,
        )
        assert report.to_canonical() == diagnose_records(records).to_canonical()
        # The torn record was never surfaced alone: the first delivery
        # stops at the last complete line.
        assert progress[0][0] == 10

    def test_stop_callback_ends_the_loop(self, tmp_path):
        path = tmp_path / "stop.jsonl"
        path.touch()
        records = _records()
        feeder = _Feeder(path, [records[:30]])
        polls = {"n": 0}

        def stop():
            polls["n"] += 1
            return polls["n"] >= 2

        report = follow_trace(
            path, poll_s=1.0, idle_timeout_s=None, stop=stop,
            clock=feeder.clock, sleep=feeder.sleep,
        )
        # The final drain picks up whatever landed before the stop.
        assert report.records == 30

    def test_bad_pacing_rejected(self, tmp_path):
        with pytest.raises(DiagnosisError):
            follow_trace(tmp_path / "x.jsonl", poll_s=0.0)
        with pytest.raises(DiagnosisError):
            follow_trace(tmp_path / "x.jsonl", idle_timeout_s=-1.0)
