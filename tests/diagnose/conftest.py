"""Shared fixtures: recorded chaos traces and synthetic record builders."""

from __future__ import annotations

import pytest

from repro.experiments.faults import run_faults
from repro.obs import Tracer
from repro.obs.sinks import ListSink
from repro.units import msecs

#: Fault plans whose headline class the detection gate covers, with the
#: finding class each inflicts.
CHAOS_PLANS = {
    "bursty-loss": "loss",
    "blackout": "blackout",
    "slow-receiver": "stall",
    "exchange-chaos": "stale-exchange",
}


@pytest.fixture(scope="session")
def chaos_traces():
    """{plan: (records, points)} for a fault-free + full-intensity sweep.

    One short sweep per plan; every test that needs real traces shares
    these (the sweeps are deterministic, so sharing changes nothing).
    """
    out = {}
    for plan in CHAOS_PLANS:
        tracer = Tracer(ListSink(), label=f"faults:{plan}")
        result = run_faults(
            plan_name=plan,
            intensities=(0.0, 1.0),
            measure_ns=msecs(80),
            tracer=tracer,
        )
        out[plan] = (list(tracer.sink.records), result.to_json()["points"])
    return out


@pytest.fixture(scope="session")
def clean_records(chaos_traces):
    """One fault-free traced run (the stall sweep's intensity-0 segment)."""
    records, _ = chaos_traces["slow-receiver"]
    # The second run starts where simulated time resets; keep run 0 plus
    # its header.
    boundary = None
    last_t = None
    for i, record in enumerate(records):
        if record["type"] == "trace.header":
            continue
        if last_t is not None and record["t"] < last_t:
            boundary = i
            break
        last_t = record["t"]
    assert boundary is not None
    return records[:boundary]


# ----------------------------------------------------------------------
# Synthetic record builders (minimal valid shapes for each rule).
# ----------------------------------------------------------------------

def header(label="test"):
    return {"t": 0, "type": "trace.header", "src": "tracer", "label": label}


def tcp_tx(t, src="conn.0.a", retransmit=False):
    return {
        "t": t, "type": "tcp.event", "src": src, "event": "tx",
        "detail": {"retransmit": retransmit},
    }


def exchange_send(t, src="conn.0.a"):
    return {"t": t, "type": "exchange.send", "src": src}


def exchange_recv(t, src="conn.0.b", outcome="accepted", candidate_time=None):
    record = {"t": t, "type": "exchange.recv", "src": src, "outcome": outcome}
    if candidate_time is not None:
        record["unacked"] = {"time": candidate_time}
    return record


def estimator_sample(
    t, src="conn.0.a", unacked=None, unread=None, ackdelay=None,
    remote_unread=None, latency_ns=None, clamped=None,
):
    record = {
        "t": t, "type": "estimator.sample", "src": src,
        "local": {"unacked": unacked, "unread": unread,
                  "ackdelay": ackdelay},
        "remote": {"unread": remote_unread},
    }
    if latency_ns is not None:
        record["latency_ns"] = latency_ns
    if clamped is not None:
        record["clamped"] = clamped
    return record


def toggler_decision(t, phase="apply", toggled=False, src="toggler"):
    return {
        "t": t, "type": "toggler.decision", "src": src,
        "phase": phase, "toggled": toggled,
    }
