"""Decision-rule primitives: config validation, triage, clustering."""

from __future__ import annotations

import pytest

from repro.diagnose.rules import (
    LIMIT_IDLE,
    LIMIT_NETWORK,
    LIMIT_RECEIVER,
    LIMIT_SENDER,
    Clusters,
    DiagnosisConfig,
    limit_label,
)
from repro.errors import DiagnosisError
from repro.faults.injector import EpisodeLog


class TestDiagnosisConfig:
    def test_defaults_validate(self):
        DiagnosisConfig().validate()

    @pytest.mark.parametrize("field,value", [
        ("merge_gap_ns", 0),
        ("dead_air_ns", -1),
        ("stall_factor", 0.5),
        ("baseline_alpha", 0.0),
        ("baseline_alpha", 1.5),
        ("osc_threshold", 0.0),
        ("frozen_ticks", 0),
        ("divergence_min_samples", 0),
        ("pathological_classes", ("no-such-class",)),
    ])
    def test_bad_values_raise(self, field, value):
        config = DiagnosisConfig(**{field: value})
        with pytest.raises(DiagnosisError):
            config.validate()


class TestLimitLabel:
    def test_dominating_queue_wins(self):
        assert limit_label(100, 10, 10) == LIMIT_NETWORK
        assert limit_label(10, 100, 10) == LIMIT_RECEIVER
        assert limit_label(10, 10, 100) == LIMIT_SENDER

    def test_all_undefined_is_idle(self):
        assert limit_label(None, None, None) == LIMIT_IDLE

    def test_ties_break_by_severity(self):
        # network > receiver > sender on equal delays.
        assert limit_label(10, 10, 10) == LIMIT_NETWORK
        assert limit_label(None, 10, 10) == LIMIT_RECEIVER

    def test_partial_definition(self):
        assert limit_label(None, None, 5) == LIMIT_SENDER


class TestClusters:
    def test_merges_within_gap(self):
        c = Clusters(10)
        c.add(0)
        c.add(5)
        c.add(14)
        assert c.closed() == [(0, 14, 3)]

    def test_splits_beyond_gap(self):
        c = Clusters(10)
        c.add(0)
        c.add(100)
        assert c.closed() == [(0, 0, 1), (100, 100, 1)]

    def test_intervals_extend_end(self):
        c = Clusters(10)
        c.add(0, 50)
        c.add(55)
        assert c.closed() == [(0, 55, 2)]

    def test_closed_is_pure(self):
        c = Clusters(10)
        c.add(0)
        first = c.closed()
        second = c.closed()
        assert first == second == [(0, 0, 1)]
        c.add(5)  # still merges: closed() did not seal the open cluster
        assert c.closed() == [(0, 5, 2)]

    def test_events_counts_everything(self):
        c = Clusters(10)
        for t in (0, 5, 100, 105, 300):
            c.add(t)
        assert c.events == 5


class TestEpisodeLog:
    def test_clusters_per_class_and_target(self):
        log = EpisodeLog(merge_gap_ns=10)
        log.record("loss", "link.forward", 0)
        log.record("loss", "link.forward", 5)
        log.record("loss", "link.backward", 6)   # other target: own episode
        log.record("stall", "link.forward", 7)   # other class: own episode
        episodes = log.episodes()
        assert [(e["class"], e["target"], e["events"]) for e in episodes] == [
            ("loss", "link.forward", 2),
            ("loss", "link.backward", 1),
            ("stall", "link.forward", 1),
        ]

    def test_gap_splits_episodes(self):
        log = EpisodeLog(merge_gap_ns=10)
        log.record("loss", "link", 0)
        log.record("loss", "link", 100)
        assert [e["start_ns"] for e in log.episodes()] == [0, 100]

    def test_windows_extend(self):
        log = EpisodeLog(merge_gap_ns=10)
        log.record("stall", "sock", 0, 40)
        log.record("stall", "sock", 45, 80)
        (episode,) = log.episodes()
        assert episode["start_ns"] == 0
        assert episode["end_ns"] == 80
        assert episode["events"] == 2
