"""Scoring findings against labeled ground truth."""

from __future__ import annotations

import pytest

from repro.diagnose import diagnose_records, score_report
from repro.errors import DiagnosisError
from tests.diagnose.conftest import header, tcp_tx


def _report(findings_by_run):
    """A minimal parsed report with the given findings per run."""
    runs = []
    for index, findings in enumerate(findings_by_run):
        runs.append({
            "index": index, "start_ns": 0, "end_ns": 100, "records": 1,
            "connections": [], "findings": findings,
        })
    return {
        "schema": "repro-diagnosis-v1", "label": None, "records": 1,
        "runs": runs,
        "summary": {
            "runs": len(runs), "connections": 0,
            "findings": sum(len(f) for f in findings_by_run),
            "flagged": 0, "by_class": {},
        },
    }


def _finding(cls, start, end):
    return {"class": cls, "connection": "conn.0", "start_ns": start,
            "end_ns": end, "events": 1, "detail": "test"}


def _episode(cls, start, end):
    return {"class": cls, "target": "link", "start_ns": start,
            "end_ns": end, "events": 1}


def _point(episodes):
    return {"fault_episodes": episodes}


class TestMatching:
    def test_overlap_counts_as_detection(self):
        score = score_report(
            _report([[_finding("loss", 50, 60)]]),
            [_point([_episode("loss", 40, 55)])],
        )
        assert score["classes"]["loss"]["recall"] == 1.0
        assert score["false_positives"] == []

    def test_slack_bridges_detection_lag(self):
        # Finding starts 20ms after the episode ended: within slack.
        score = score_report(
            _report([[_finding("loss", 120_000_000, 125_000_000)]]),
            [_point([_episode("loss", 90_000_000, 100_000_000)])],
        )
        assert score["classes"]["loss"]["recall"] == 1.0

    def test_beyond_slack_is_a_miss(self):
        score = score_report(
            _report([[_finding("loss", 500_000_000, 505_000_000)]]),
            [_point([_episode("loss", 0, 1_000_000)])],
        )
        assert score["classes"]["loss"]["recall"] == 0.0
        # ... and the distant finding explains nothing: false positive.
        assert len(score["false_positives"]) == 1

    def test_blackout_detected_as_loss(self):
        # COMPATIBLE: loss findings count as detecting a blackout.
        score = score_report(
            _report([[_finding("loss", 10, 20)]]),
            [_point([_episode("blackout", 0, 30)])],
        )
        assert score["classes"]["blackout"]["recall"] == 1.0

    def test_loss_not_detected_by_stall(self):
        score = score_report(
            _report([[_finding("stall", 10, 20)]]),
            [_point([_episode("loss", 10, 20)])],
        )
        assert score["classes"]["loss"]["recall"] == 0.0

    def test_stale_exchange_explained_but_not_detecting(self):
        # EXPLAINS is wider than COMPATIBLE: a stale-exchange finding
        # during a blackout is an honest consequence (no FP), but it
        # does not count as having *detected* the blackout.
        score = score_report(
            _report([[_finding("stale-exchange", 10, 20)]]),
            [_point([_episode("blackout", 0, 30)])],
        )
        assert score["classes"]["blackout"]["recall"] == 0.0
        assert score["false_positives"] == []
        assert score["precision"] == 1.0

    def test_control_plane_findings_never_fp_in_faulted_runs(self):
        score = score_report(
            _report([[_finding("toggler-frozen", 10, 20)]]),
            [_point([_episode("loss", 0, 30)])],
        )
        assert score["false_positives"] == []
        assert score["findings"] == 0  # not scored for precision either

    def test_control_plane_findings_are_fps_in_clean_runs(self):
        score = score_report(
            _report([[_finding("toggler-frozen", 10, 20)]]),
            [_point([])],
        )
        assert score["clean_runs"] == 1
        assert score["clean_run_findings"] == 1
        assert len(score["false_positives"]) == 1

    def test_clean_run_clean_report(self):
        score = score_report(_report([[]]), [_point([])])
        assert score["clean_runs"] == 1
        assert score["clean_run_findings"] == 0
        assert score["recall"] == 1.0  # vacuous
        assert score["precision"] == 1.0

    def test_positional_alignment(self):
        # Run 0 ↔ point 0 and run 1 ↔ point 1 — findings never match
        # across the pairing even when intervals overlap.
        score = score_report(
            _report([[], [_finding("loss", 10, 20)]]),
            [_point([_episode("loss", 10, 20)]), _point([])],
        )
        assert score["classes"]["loss"]["recall"] == 0.0
        assert score["clean_run_findings"] == 1

    def test_fewer_runs_than_points_is_fine(self):
        # A sweep whose tail wasn't traced still scores the prefix.
        score = score_report(
            _report([[_finding("loss", 10, 20)]]),
            [_point([_episode("loss", 10, 20)]), _point([])],
        )
        assert score["recall"] == 1.0


class TestErrors:
    def test_more_runs_than_points_raises(self):
        with pytest.raises(DiagnosisError, match="align"):
            score_report(_report([[], []]), [_point([])])

    def test_unknown_ground_truth_class_raises(self):
        with pytest.raises(DiagnosisError, match="gremlins"):
            score_report(
                _report([[]]),
                [_point([_episode("gremlins", 0, 1)])],
            )


class TestReportObjects:
    def test_accepts_diagnosis_report_directly(self):
        report = diagnose_records(
            [header()] + [tcp_tx(t * 1_000_000) for t in range(1, 20)]
        )
        score = score_report(report, [_point([])])
        assert score["clean_runs"] == 1
        assert score["clean_run_findings"] == 0
