"""repro-diagnosis-v1 schema validation."""

from __future__ import annotations

import copy

import pytest

from repro.diagnose import (
    diagnose_records,
    require_valid_report,
    validate_report,
)
from repro.errors import DiagnosisError
from tests.diagnose.conftest import header, tcp_tx, toggler_decision


def _document():
    """A real report document with at least one finding and connection."""
    records = [header(label="schema")]
    records += [
        tcp_tx(t * 1_000_000, retransmit=(t % 4 == 0)) for t in range(1, 40)
    ]
    records += [toggler_decision(41_000_000)]
    return diagnose_records(records).to_json()


class TestValidateReport:
    def test_real_reports_validate(self, chaos_traces):
        for plan, (records, _) in chaos_traces.items():
            document = diagnose_records(records).to_json()
            assert validate_report(document) == [], plan

    def test_empty_stream_report_validates(self):
        assert validate_report(diagnose_records([]).to_json()) == []

    def test_non_object_rejected(self):
        assert validate_report([]) != []
        assert validate_report(None) != []

    def test_missing_field_reported(self):
        document = _document()
        del document["summary"]
        assert any("summary" in p for p in validate_report(document))

    def test_wrong_schema_string(self):
        document = _document()
        document["schema"] = "repro-diagnosis-v0"
        assert any("schema" in p for p in validate_report(document))

    def test_unexpected_field_reported(self):
        document = _document()
        document["bonus"] = 1
        assert any("bonus" in p for p in validate_report(document))

    def test_wrong_field_type_reported(self):
        document = _document()
        document["records"] = "many"
        assert any("records" in p for p in validate_report(document))

    def test_bool_is_not_int(self):
        document = _document()
        document["records"] = True
        assert validate_report(document) != []

    def test_unknown_finding_class_rejected(self):
        document = _document()
        assert document["runs"][0]["findings"], "fixture must have findings"
        bad = copy.deepcopy(document)
        bad["runs"][0]["findings"][0]["class"] = "gremlins"
        assert any("gremlins" in p for p in validate_report(bad))

    def test_unknown_verdict_rejected(self):
        document = _document()
        assert document["runs"][0]["connections"], "fixture needs connections"
        bad = copy.deepcopy(document)
        bad["runs"][0]["connections"][0]["verdict"] = "blocked"
        assert any("verdict" in p for p in validate_report(bad))

    def test_inverted_run_interval_rejected(self):
        document = _document()
        document["runs"][0]["start_ns"] = document["runs"][0]["end_ns"] + 1
        assert any("precedes" in p for p in validate_report(document))

    def test_summary_consistency_enforced(self):
        document = _document()
        document["summary"]["findings"] += 1
        document["summary"]["by_class"] = {"loss": 99}
        assert validate_report(document) != []


class TestRequireValidReport:
    def test_passes_silently(self):
        require_valid_report(_document())

    def test_raises_with_problem_list(self):
        document = _document()
        del document["runs"]
        with pytest.raises(DiagnosisError, match="runs"):
            require_valid_report(document)
