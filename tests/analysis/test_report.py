"""Tests for table formatting."""

from __future__ import annotations

from repro.analysis.report import format_table


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            ["name", "value"],
            [("a", 1), ("bb", 22)],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5
        # All data lines share the same width.
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1

    def test_float_formatting(self):
        text = format_table(["x"], [(1.23456,)])
        assert "1.235" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert len(text.splitlines()) == 2
