"""Tests for counter collection."""

from __future__ import annotations

import pytest

from repro.analysis.counters import CounterCollector, TripleSnapshot
from repro.core.qstate import QueueState
from repro.errors import EstimationError


class FakeEndpoint:
    def __init__(self, clock):
        self.qs_unacked = QueueState(clock)
        self.qs_unread = QueueState(clock)
        self.qs_ackdelay = QueueState(clock)


class TestTripleSnapshot:
    def test_captures_all_three(self, sim):
        endpoint = FakeEndpoint(lambda: sim.now)
        endpoint.qs_unacked.track(5)
        snapshot = TripleSnapshot.capture(endpoint)
        assert snapshot.unacked.total == 0
        assert snapshot.unread.time == sim.now


class TestCounterCollector:
    def test_periodic_sampling(self, sim):
        client = FakeEndpoint(lambda: sim.now)
        server = FakeEndpoint(lambda: sim.now)
        collector = CounterCollector(sim, client, server, period_ns=1000)
        collector.start()
        sim.run(until=5500)
        collector.stop()
        times = [s.time for s in collector.samples]
        assert times == [0, 1000, 2000, 3000, 4000, 5000, 5500]

    def test_stop_stops(self, sim):
        client = FakeEndpoint(lambda: sim.now)
        server = FakeEndpoint(lambda: sim.now)
        collector = CounterCollector(sim, client, server, period_ns=1000)
        collector.start()
        sim.run(until=2500)
        collector.stop()
        count = len(collector.samples)
        sim.run(until=10_000)
        assert len(collector.samples) == count

    def test_invalid_period(self, sim):
        with pytest.raises(EstimationError):
            CounterCollector(sim, None, None, period_ns=0)
