"""Tests for cutoff/SLO curve analytics."""

from __future__ import annotations

import pytest

from repro.analysis.cutoff import (
    CurvePoint,
    crossover_rate,
    improvement_at,
    max_sustainable_rate,
    range_extension,
)
from repro.errors import EstimationError


def curve(points):
    return [CurvePoint(rate, latency) for rate, latency in points]


class TestMaxSustainable:
    def test_highest_rate_under_slo(self):
        points = curve([(10, 100), (20, 200), (30, 600), (40, 400)])
        assert max_sustainable_rate(points, slo_ns=500) == 20

    def test_all_sustainable(self):
        points = curve([(10, 100), (20, 200)])
        assert max_sustainable_rate(points, slo_ns=500) == 20

    def test_none_sustainable(self):
        points = curve([(10, 900)])
        assert max_sustainable_rate(points, slo_ns=500) == 0

    def test_post_violation_dips_ignored(self):
        points = curve([(10, 100), (20, 600), (30, 100)])
        assert max_sustainable_rate(points, slo_ns=500) == 10

    def test_empty_curve_rejected(self):
        with pytest.raises(EstimationError):
            max_sustainable_rate([], 500)


class TestCrossover:
    def test_interpolated_crossover(self):
        baseline = curve([(10, 100), (20, 300)])
        batched = curve([(10, 200), (20, 200)])
        # diff(base-batch): -100 at 10, +100 at 20 -> crossing at 15.
        assert crossover_rate(baseline, batched) == pytest.approx(15)

    def test_batching_wins_everywhere(self):
        baseline = curve([(10, 300), (20, 300)])
        batched = curve([(10, 100), (20, 100)])
        assert crossover_rate(baseline, batched) == 10

    def test_batching_never_wins(self):
        baseline = curve([(10, 100), (20, 100)])
        batched = curve([(10, 300), (20, 300)])
        assert crossover_rate(baseline, batched) is None

    def test_disjoint_rates_rejected(self):
        with pytest.raises(EstimationError):
            crossover_rate(curve([(10, 1)]), curve([(20, 1)]))


class TestHeadlineFactors:
    def test_range_extension(self):
        baseline = curve([(10, 100), (20, 600)])
        batched = curve([(10, 200), (20, 300), (30, 450), (40, 700)])
        base_max, batch_max, factor = range_extension(baseline, batched, 500)
        assert base_max == 10
        assert batch_max == 30
        assert factor == pytest.approx(3.0)

    def test_range_extension_requires_baseline_viability(self):
        baseline = curve([(10, 900)])
        batched = curve([(10, 100)])
        with pytest.raises(EstimationError):
            range_extension(baseline, batched, 500)

    def test_improvement_at(self):
        baseline = curve([(10, 300)])
        batched = curve([(10, 100)])
        assert improvement_at(baseline, batched, 10) == pytest.approx(3.0)

    def test_improvement_missing_rate_rejected(self):
        with pytest.raises(EstimationError):
            improvement_at(curve([(10, 1)]), curve([(10, 1)]), 99)
