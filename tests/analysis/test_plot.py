"""Tests for ASCII plotting."""

from __future__ import annotations

import pytest

from repro.analysis.cutoff import CurvePoint
from repro.analysis.plot import ascii_plot, curve_points
from repro.errors import EstimationError


class TestAsciiPlot:
    def test_basic_rendering(self):
        text = ascii_plot(
            {"a": [(0, 0), (10, 100)]},
            width=20, height=6, title="T", x_label="x", y_label="y",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "o = a" in text
        assert "x: x   y: y" in text
        # Grid rows exist between title and axis.
        assert sum("|" in line for line in lines) == 6

    def test_markers_per_series(self):
        text = ascii_plot(
            {"one": [(0, 1), (1, 2)], "two": [(0, 2), (1, 1)]},
            width=20, height=6,
        )
        assert "o = one" in text
        assert "x = two" in text
        assert "o" in text and "x" in text

    def test_points_at_extremes_land_on_grid_edges(self):
        text = ascii_plot({"a": [(0, 0), (100, 50)]}, width=20, height=5)
        rows = [line.split("|", 1)[1] for line in text.splitlines() if "|" in line]
        assert rows[0].rstrip().endswith("o")   # max y at top-right
        assert rows[-1].startswith("o")          # min y at bottom-left

    def test_log_scale(self):
        text = ascii_plot(
            {"a": [(0, 1), (1, 10), (2, 100), (3, 1000)]},
            width=24, height=7, log_y=True,
        )
        assert "[log y]" in text
        # Log spacing: the four points should form a straight diagonal;
        # each occupied row has exactly one marker.
        rows = [line.split("|", 1)[1] for line in text.splitlines() if "|" in line]
        assert sum(row.count("o") for row in rows) == 4

    def test_log_rejects_nonpositive(self):
        with pytest.raises(EstimationError):
            ascii_plot({"a": [(0, 0)]}, log_y=True)

    def test_empty_rejected(self):
        with pytest.raises(EstimationError):
            ascii_plot({})
        with pytest.raises(EstimationError):
            ascii_plot({"a": []})

    def test_tiny_grid_rejected(self):
        with pytest.raises(EstimationError):
            ascii_plot({"a": [(0, 1)]}, width=4, height=2)

    def test_flat_series_does_not_crash(self):
        text = ascii_plot({"a": [(0, 5), (10, 5)]}, width=20, height=5)
        assert "o" in text


class TestCurvePoints:
    def test_conversion_to_microseconds(self):
        points = curve_points([CurvePoint(1000.0, 250_000.0)])
        assert points == [(1000.0, 250.0)]
