"""Tests for the counter dump (ethtool analogue)."""

from __future__ import annotations

from repro.analysis.dump import (
    dump_testbed,
    exchange_stats,
    host_stats,
    render_stats,
    socket_stats,
)
from repro.loadgen.lancet import BenchConfig, run_benchmark
from repro.units import msecs


class TestDump:
    def _run(self, connections=1):
        holder = {}
        run_benchmark(
            BenchConfig(
                rate_per_sec=8_000.0,
                connections=connections,
                warmup_ns=msecs(5),
                measure_ns=msecs(20),
            ),
            tweak=lambda bed: holder.update(bed=bed),
        )
        return holder["bed"]

    def test_socket_stats_complete(self):
        bed = self._run()
        stats = socket_stats(bed.client_sock)
        assert stats["segments_sent"] > 0
        assert stats["bytes_sent"] > 0
        assert stats["qs_unacked"]["total"] > 0
        assert stats["snd_una"] <= stats["snd_nxt"]

    def test_host_stats_consistent(self):
        bed = self._run()
        stats = host_stats(bed.server_host)
        assert stats["softirq"]["deliveries"] == stats["nic"]["rx_deliveries"]
        assert 0 <= stats["net_core"]["utilization"] <= 1

    def test_exchange_stats(self):
        bed = self._run()
        stats = exchange_stats(bed.client_exchange)
        assert stats["states_sent"] > 0
        assert stats["option_bytes_sent"] >= 36 * stats["states_sent"]

    def test_dump_covers_all_connections(self):
        bed = self._run(connections=2)
        stats = dump_testbed(bed)
        assert len(stats["connections"]) == 2
        assert "client_host" in stats and "server_host" in stats

    def test_render_flattens(self):
        bed = self._run()
        text = render_stats(dump_testbed(bed))
        assert "client_host.nic.tx_wire_packets" in text
        assert "connections[0].client_sock.segments_sent" in text
