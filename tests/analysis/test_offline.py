"""Tests for offline estimation (§3.4 methodology)."""

from __future__ import annotations

import pytest

from repro.analysis.counters import CounterSample, TripleSnapshot
from repro.analysis.offline import estimate_between, interval_series, window_estimate
from repro.core.qstate import QueueSnapshot
from repro.errors import EstimationError


def triple(time, unacked=(0, 0), unread=(0, 0), ackdelay=(0, 0)):
    """Build a TripleSnapshot from (total, integral) pairs."""
    return TripleSnapshot(
        unacked=QueueSnapshot(time, *unacked),
        unread=QueueSnapshot(time, *unread),
        ackdelay=QueueSnapshot(time, *ackdelay),
    )


class TestEstimateBetween:
    def test_combines_views_per_paper_formula(self):
        # Client unacked delay 100, server ackdelay 20, server unread 30,
        # client unread 10 -> client view = 100-20+30+10 = 120.
        prev = CounterSample(time=0, client=triple(0), server=triple(0))
        cur = CounterSample(
            time=1000,
            client=triple(1000, unacked=(1, 100), unread=(1, 10)),
            server=triple(1000, unread=(1, 30), ackdelay=(1, 20)),
        )
        estimate = estimate_between(prev, cur)
        assert estimate.client_view_ns == pytest.approx(120)
        # Server view: server unacked (none -> undefined).
        assert estimate.server_view_ns is None
        assert estimate.latency_ns == pytest.approx(120)

    def test_max_of_both_views(self):
        prev = CounterSample(time=0, client=triple(0), server=triple(0))
        cur = CounterSample(
            time=1000,
            client=triple(1000, unacked=(1, 100), unread=(1, 10)),
            server=triple(1000, unacked=(1, 500), unread=(1, 30),
                          ackdelay=(1, 20)),
        )
        estimate = estimate_between(prev, cur)
        # Server view = 500 - 0(client ackdelay undefined->0) + 30 + 10.
        assert estimate.server_view_ns == pytest.approx(540)
        assert estimate.latency_ns == pytest.approx(540)

    def test_throughput_from_client_unacked(self):
        prev = CounterSample(time=0, client=triple(0), server=triple(0))
        cur = CounterSample(
            time=10**9,
            client=triple(10**9, unacked=(5000, 1), unread=(1, 1)),
            server=triple(10**9, unread=(1, 1)),
        )
        estimate = estimate_between(prev, cur)
        assert estimate.throughput_per_sec == pytest.approx(5000)

    def test_out_of_order_samples_rejected(self):
        sample = CounterSample(time=0, client=triple(0), server=triple(0))
        with pytest.raises(EstimationError):
            estimate_between(sample, sample)


class TestSeries:
    def _samples(self):
        samples = []
        for index in range(4):
            t = index * 1000
            samples.append(
                CounterSample(
                    time=t,
                    client=triple(t, unacked=(index, index * 50),
                                  unread=(index, index * 10)),
                    server=triple(t, unread=(index, index * 20),
                                  ackdelay=(index, index * 5)),
                )
            )
        return samples

    def test_interval_series_length(self):
        series = interval_series(self._samples())
        assert len(series) == 3
        assert all(e.defined for e in series)

    def test_window_estimate_uses_bracketing_samples(self):
        estimate = window_estimate(self._samples(), 0, 3000)
        assert estimate.start == 0
        assert estimate.end == 3000

    def test_window_estimate_needs_two_samples(self):
        with pytest.raises(EstimationError):
            window_estimate(self._samples(), 2500, 2600)
