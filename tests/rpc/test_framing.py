"""Tests for RPC framing."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import ProtocolError
from repro.rpc.framing import FRAME_HEADER_BYTES, FrameHeader, frame_bytes


class TestFrameBytes:
    def test_header_is_16_bytes(self):
        assert FRAME_HEADER_BYTES == 16

    def test_frame_size(self):
        assert frame_bytes(100) == 116
        assert frame_bytes(0) == 16

    def test_negative_rejected(self):
        with pytest.raises(ProtocolError):
            frame_bytes(-1)


class TestFrameHeader:
    def test_roundtrip(self):
        header = FrameHeader(payload_bytes=1234, call_id=99,
                             method_id=7, flags=FrameHeader.REPLY_FLAG)
        decoded = FrameHeader.decode(header.encode())
        assert decoded == header
        assert decoded.is_reply
        assert not decoded.is_error

    def test_error_flag(self):
        header = FrameHeader(0, 1, 1,
                             flags=FrameHeader.REPLY_FLAG | FrameHeader.ERROR_FLAG)
        assert header.is_error

    def test_wrong_length_rejected(self):
        with pytest.raises(ProtocolError):
            FrameHeader.decode(b"\x00" * 15)

    @given(st.integers(0, 2**32 - 1), st.integers(0, 2**64 - 1),
           st.integers(0, 2**16 - 1), st.integers(0, 2**16 - 1))
    def test_roundtrip_any_values(self, payload, call_id, method, flags):
        header = FrameHeader(payload, call_id, method, flags)
        assert FrameHeader.decode(header.encode()) == header
