"""Integration tests for the RPC framework over the simulated stack."""

from __future__ import annotations

import pytest

from repro.core.hints import RemoteHintEstimator
from repro.core.exchange import MetadataExchange
from repro.errors import ProtocolError
from repro.rpc import RpcChannel, RpcMethod, RpcServer
from repro.sim.process import Timeout

SECOND = 10**9

ECHO = RpcMethod(method_id=1, name="echo", reply_bytes_fn=lambda n: n)
SHRINK = RpcMethod(method_id=2, name="ack", reply_bytes_fn=lambda n: 8)


def build_rpc(sim, pair_factory, methods=(ECHO, SHRINK), with_exchange=False):
    client_host, server_host, sock_a, sock_b = pair_factory.build()
    client_exchange = server_exchange = None
    if with_exchange:
        client_exchange = MetadataExchange(sim, sock_a, period_ns=1_000_000)
        server_exchange = MetadataExchange(sim, sock_b, period_ns=1_000_000)
    channel = RpcChannel(sim, client_host, sock_a, exchange=client_exchange)
    server = RpcServer(sim, server_host, [sock_b])
    for method in methods:
        server.register(method)
    server.start()
    return channel, server, server_exchange


class TestCalls:
    def test_single_call_roundtrip(self, sim, pair_factory):
        channel, server, _ = build_rpc(sim, pair_factory)
        outcome = {}

        def caller():
            future = channel.call(ECHO.method_id, 1000)
            reply = yield future
            outcome["reply"] = reply
            outcome["time"] = sim.now

        sim.spawn(caller())
        sim.run(until=SECOND)
        assert outcome["reply"].payload_bytes == 1000
        assert not outcome["reply"].is_error
        assert outcome["time"] > 0
        assert server.calls_served == 1

    def test_concurrent_calls_matched_by_id(self, sim, pair_factory):
        channel, server, _ = build_rpc(sim, pair_factory)
        replies = {}

        def caller():
            futures = [
                channel.call(ECHO.method_id, (index + 1) * 100)
                for index in range(5)
            ]
            for future in futures:
                reply = yield future
                replies[reply.call_id] = reply.payload_bytes

        sim.spawn(caller())
        sim.run(until=SECOND)
        assert len(replies) == 5
        assert sorted(replies.values()) == [100, 200, 300, 400, 500]

    def test_unknown_method_returns_error(self, sim, pair_factory):
        channel, server, _ = build_rpc(sim, pair_factory)
        outcome = {}

        def caller():
            reply = yield channel.call(method_id=999, payload_bytes=10)
            outcome["reply"] = reply

        sim.spawn(caller())
        sim.run(until=SECOND)
        assert outcome["reply"].is_error
        assert channel.errors_received == 1
        assert server.errors_returned == 1

    def test_mixed_methods(self, sim, pair_factory):
        channel, server, _ = build_rpc(sim, pair_factory)
        sizes = {}

        def caller():
            echo = channel.call(ECHO.method_id, 5000)
            shrink = channel.call(SHRINK.method_id, 5000)
            reply_a = yield echo
            reply_b = yield shrink
            sizes["echo"] = reply_a.payload_bytes
            sizes["shrink"] = reply_b.payload_bytes

        sim.spawn(caller())
        sim.run(until=SECOND)
        assert sizes == {"echo": 5000, "shrink": 8}


class TestHintsIntegration:
    def test_channel_drives_hints_transparently(self, sim, pair_factory):
        channel, server, _ = build_rpc(sim, pair_factory)

        def caller():
            for _ in range(10):
                reply = yield channel.call(SHRINK.method_id, 2000)
                yield Timeout(100_000)

        sim.spawn(caller())
        sim.run(until=SECOND)
        assert channel.hints.state.total == 10
        assert channel.hints.outstanding == 0

    def test_server_estimates_latency_from_hints(self, sim, pair_factory):
        """The paper's full §3.3 loop over RPC: the channel's hints ride
        the exchange; the server recovers call latency via Little's law."""
        channel, server, server_exchange = build_rpc(
            sim, pair_factory, with_exchange=True
        )
        latencies = []

        def caller():
            while sim.now < SECOND // 10:
                start = sim.now
                yield channel.call(SHRINK.method_id, 2000)
                latencies.append(sim.now - start)
                yield Timeout(200_000)

        sim.spawn(caller())
        sim.run(until=SECOND // 8)
        estimator = RemoteHintEstimator(server_exchange)
        # Prime with the earliest snapshot then read the latest interval.
        averages = estimator.sample()
        assert averages is not None and averages.defined
        measured_mean = sum(latencies) / len(latencies)
        assert averages.latency_ns == pytest.approx(measured_mean, rel=0.5)


class TestServerValidation:
    def test_needs_sockets_and_methods(self, sim, pair_factory):
        _, server_host, _, sock_b = pair_factory.build()
        with pytest.raises(ProtocolError):
            RpcServer(sim, server_host, [])
        server = RpcServer(sim, server_host, [sock_b])
        with pytest.raises(ProtocolError):
            server.start()

    def test_duplicate_method_rejected(self, sim, pair_factory):
        _, server_host, _, sock_b = pair_factory.build()
        server = RpcServer(sim, server_host, [sock_b])
        server.register(ECHO)
        with pytest.raises(ProtocolError):
            server.register(ECHO)

    def test_negative_payload_rejected(self, sim, pair_factory):
        channel, _, _ = build_rpc(sim, pair_factory)
        with pytest.raises(ProtocolError):
            channel.call(ECHO.method_id, -1)
