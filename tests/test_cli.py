"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig1_defaults(self):
        args = build_parser().parse_args(["fig1"])
        assert args.c == [1.0, 3.0, 5.0]

    def test_run_options(self):
        args = build_parser().parse_args([
            "run", "--rate", "5000", "--nagle", "--nagle-mode", "minshall",
            "--value-bytes", "1024",
        ])
        assert args.rate == 5000
        assert args.nagle
        assert args.nagle_mode == "minshall"

    def test_ablation_choices(self):
        args = build_parser().parse_args(["ablation", "units"])
        assert args.which == "units"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ablation", "nonsense"])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_serve_requires_spool_and_state(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--spool", "s"])

    def test_serve_defaults(self):
        args = build_parser().parse_args([
            "serve", "--spool", "in", "--state", "st",
        ])
        assert args.spool == "in"
        assert args.state == "st"
        assert args.host == "127.0.0.1"
        assert args.port == 0
        assert args.poll == 0.5
        assert args.once is False
        assert args.remediate is False

    def test_serve_options(self):
        args = build_parser().parse_args([
            "serve", "--spool", "in", "--state", "st",
            "--port", "8080", "--poll", "0.1", "--once", "--quiet",
            "--measure-ms", "30", "--remediate",
            "--playbooks", "pb.json",
        ])
        assert args.port == 8080
        assert args.poll == 0.1
        assert args.once
        assert args.quiet
        assert args.measure_ms == 30
        assert args.remediate
        assert args.playbooks == "pb.json"


class TestInterrupt:
    """^C lands as a clean exit, not a traceback (POSIX 128+SIGINT)."""

    def _interrupt(self, monkeypatch, argv):
        def boom(args):
            raise KeyboardInterrupt
        parser = build_parser()
        real_parse = parser.parse_args

        def parse(argv_inner=None):
            args = real_parse(argv_inner)
            args.func = boom
            return args

        monkeypatch.setattr("repro.cli.build_parser", lambda: parser)
        monkeypatch.setattr(parser, "parse_args", parse)
        return main(argv)

    def test_interrupted_run_exits_130(self, monkeypatch, capsys):
        code = self._interrupt(monkeypatch, ["run", "--rate", "5000"])
        assert code == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert "Traceback" not in err

    def test_interrupted_campaign_hints_at_resume(
        self, monkeypatch, capsys
    ):
        code = self._interrupt(monkeypatch, [
            "campaign", "run", "spec.json", "--cache-dir", "/tmp/ckpt",
        ])
        assert code == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert "/tmp/ckpt" in err
        assert "resume" in err


class TestCommands:
    def test_fig1_prints_table(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "improves" in out

    def test_run_prints_metrics(self, capsys):
        code = main([
            "run", "--rate", "8000", "--measure-ms", "30",
            "--warmup-ms", "10",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "achieved" in out
        assert "latency mean/p50/p99" in out
        assert "hint estimate" in out

    def test_run_with_nagle_and_mix(self, capsys):
        code = main([
            "run", "--rate", "8000", "--nagle", "--set-ratio", "0.9",
            "--measure-ms", "30", "--warmup-ms", "10",
        ])
        assert code == 0
        assert "byte-queue estimate" in capsys.readouterr().out
