"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_fig1_defaults(self):
        args = build_parser().parse_args(["fig1"])
        assert args.c == [1.0, 3.0, 5.0]

    def test_run_options(self):
        args = build_parser().parse_args([
            "run", "--rate", "5000", "--nagle", "--nagle-mode", "minshall",
            "--value-bytes", "1024",
        ])
        assert args.rate == 5000
        assert args.nagle
        assert args.nagle_mode == "minshall"

    def test_ablation_choices(self):
        args = build_parser().parse_args(["ablation", "units"])
        assert args.which == "units"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ablation", "nonsense"])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_fig1_prints_table(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out
        assert "improves" in out

    def test_run_prints_metrics(self, capsys):
        code = main([
            "run", "--rate", "8000", "--measure-ms", "30",
            "--warmup-ms", "10",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "achieved" in out
        assert "latency mean/p50/p99" in out
        assert "hint estimate" in out

    def test_run_with_nagle_and_mix(self, capsys):
        code = main([
            "run", "--rate", "8000", "--nagle", "--set-ratio", "0.9",
            "--measure-ms", "30", "--warmup-ms", "10",
        ])
        assert code == 0
        assert "byte-queue estimate" in capsys.readouterr().out
