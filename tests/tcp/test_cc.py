"""Tests for Reno congestion control."""

from __future__ import annotations

import pytest

from repro.errors import TcpError
from repro.tcp.cc import RenoCongestionControl


class TestReno:
    def test_initial_window(self):
        cc = RenoCongestionControl(mss=1448)
        assert cc.cwnd == 10 * 1448
        assert cc.in_slow_start

    def test_slow_start_doubles_per_window(self):
        cc = RenoCongestionControl(mss=1000, initial_window_segments=2)
        cc.on_ack(2000)
        assert cc.cwnd == 4000

    def test_congestion_avoidance_linear(self):
        cc = RenoCongestionControl(mss=1000, initial_window_segments=10)
        cc.ssthresh = 5000  # below cwnd: CA mode
        assert not cc.in_slow_start
        before = cc.cwnd
        cc.on_ack(before)  # a full window of acks
        assert cc.cwnd == pytest.approx(before + 1000, abs=10)

    def test_loss_halves(self):
        cc = RenoCongestionControl(mss=1000)
        cc.cwnd = 20_000
        cc.on_loss()
        assert cc.cwnd == 10_000
        assert cc.ssthresh == 10_000
        assert cc.losses == 1

    def test_timeout_collapses_to_one_mss(self):
        cc = RenoCongestionControl(mss=1000)
        cc.cwnd = 20_000
        cc.on_timeout()
        assert cc.cwnd == 1000
        assert cc.ssthresh == 10_000

    def test_floor_of_two_mss(self):
        cc = RenoCongestionControl(mss=1000)
        cc.cwnd = 1000
        cc.on_loss()
        assert cc.ssthresh == 2000

    def test_zero_ack_noop(self):
        cc = RenoCongestionControl(mss=1000)
        before = cc.cwnd
        cc.on_ack(0)
        assert cc.cwnd == before

    def test_negative_ack_rejected(self):
        with pytest.raises(TcpError):
            RenoCongestionControl(mss=1000).on_ack(-1)

    def test_invalid_mss_rejected(self):
        with pytest.raises(TcpError):
            RenoCongestionControl(mss=0)
