"""Tests for the batching heuristics decision function."""

from __future__ import annotations

import pytest

from repro.errors import TcpError
from repro.tcp.nagle import NAGLE_MINSHALL, BatchingHeuristics


class TestNagleDecision:
    def test_nagle_holds_partial_with_unacked_data(self):
        h = BatchingHeuristics(nagle=True, autocork=False)
        assert not h.may_send_partial(
            queued_bytes=500, unacked_bytes=1000, tx_ring_occupancy=0
        )

    def test_nagle_allows_partial_when_all_acked(self):
        h = BatchingHeuristics(nagle=True, autocork=False)
        assert h.may_send_partial(
            queued_bytes=500, unacked_bytes=0, tx_ring_occupancy=0
        )

    def test_nodelay_always_sends(self):
        h = BatchingHeuristics(nagle=False, autocork=False)
        assert h.may_send_partial(
            queued_bytes=1, unacked_bytes=10**6, tx_ring_occupancy=10
        )

    def test_autocork_holds_while_ring_busy(self):
        h = BatchingHeuristics(nagle=False, autocork=True)
        assert not h.may_send_partial(
            queued_bytes=500, unacked_bytes=0, tx_ring_occupancy=3
        )
        assert h.may_send_partial(
            queued_bytes=500, unacked_bytes=0, tx_ring_occupancy=0
        )

    def test_batch_floor_holds_below_threshold(self):
        h = BatchingHeuristics(nagle=False, autocork=False, min_batch_bytes=1000)
        assert not h.may_send_partial(
            queued_bytes=999, unacked_bytes=0, tx_ring_occupancy=0
        )
        assert h.may_send_partial(
            queued_bytes=1000, unacked_bytes=0, tx_ring_occupancy=0
        )

    def test_heuristics_compose(self):
        h = BatchingHeuristics(nagle=True, autocork=True, min_batch_bytes=100)
        # All three must pass.
        assert h.may_send_partial(100, 0, 0)
        assert not h.may_send_partial(99, 0, 0)
        assert not h.may_send_partial(100, 1, 0)
        assert not h.may_send_partial(100, 0, 1)


class TestMinshallVariant:
    def test_allows_partial_behind_full_segments(self):
        """Minshall's point: a large write's tail is not held back by
        the full-MSS segments in flight ahead of it."""
        h = BatchingHeuristics(nagle=True, nagle_mode=NAGLE_MINSHALL,
                               autocork=False)
        assert h.may_send_partial(
            queued_bytes=500, unacked_bytes=100_000, tx_ring_occupancy=0,
            small_packet_outstanding=False,
        )

    def test_holds_partial_behind_small_packet(self):
        h = BatchingHeuristics(nagle=True, nagle_mode=NAGLE_MINSHALL,
                               autocork=False)
        assert not h.may_send_partial(
            queued_bytes=500, unacked_bytes=600, tx_ring_occupancy=0,
            small_packet_outstanding=True,
        )

    def test_classic_ignores_small_packet_flag(self):
        h = BatchingHeuristics(nagle=True, autocork=False)
        assert not h.may_send_partial(
            queued_bytes=500, unacked_bytes=100_000, tx_ring_occupancy=0,
            small_packet_outstanding=False,
        )

    def test_unknown_mode_rejected(self):
        with pytest.raises(TcpError):
            BatchingHeuristics(nagle_mode="bogus")


class TestMinshallOnSocket:
    def test_large_write_tail_flows_immediately(self, sim, pair_factory):
        _, _, a, b = pair_factory.build(
            nagle=True,
            tcp_kwargs={"nagle_mode": "minshall",
                        "initial_cwnd_segments": 40},
        )
        mss = a.config.mss
        size = 11 * mss + 516
        a.send("req", size)
        # Unlike classic Nagle, the tail goes out at once.
        assert a.snd_nxt == size

    def test_back_to_back_small_writes_still_coalesce(self, sim, pair_factory):
        _, _, a, b = pair_factory.build(
            nagle=True, tcp_kwargs={"nagle_mode": "minshall"}
        )
        a.send("m1", 500)
        assert a.snd_nxt == 500    # first small packet goes
        a.send("m2", 400)
        assert a.snd_nxt == 500    # held: a small packet is outstanding
        sim.run(until=10**9)
        assert a.snd_nxt == 900
