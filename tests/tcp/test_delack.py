"""Tests for delayed-ack management."""

from __future__ import annotations

from repro.tcp.delack import DelayedAckManager
from repro.units import msecs

MSS = 1448


def make(sim, delay_ns=msecs(40)):
    acks = []
    manager = DelayedAckManager(
        sim, MSS, ack_now=lambda: acks.append(sim.now), delay_ns=delay_ns
    )
    return manager, acks


class TestDelayedAcks:
    def test_small_data_arms_timer(self, sim):
        manager, acks = make(sim, delay_ns=1000)
        manager.on_data_received(100)
        assert manager.timer_armed
        sim.run()
        assert acks == [1000]
        assert manager.timer_fires == 1

    def test_two_full_segments_ack_immediately(self, sim):
        manager, acks = make(sim)
        manager.on_data_received(2 * MSS)
        assert acks == [0]
        assert not manager.timer_armed
        assert manager.quick_acks == 1

    def test_accumulation_crosses_threshold(self, sim):
        manager, acks = make(sim)
        manager.on_data_received(MSS)
        assert acks == []
        manager.on_data_received(MSS)
        assert acks == [0]

    def test_piggyback_cancels_timer(self, sim):
        manager, acks = make(sim, delay_ns=1000)
        manager.on_data_received(100)
        manager.on_ack_piggybacked()
        assert not manager.timer_armed
        sim.run()
        assert acks == []

    def test_piggyback_resets_accumulator(self, sim):
        manager, acks = make(sim)
        manager.on_data_received(MSS)
        manager.on_ack_piggybacked()
        manager.on_data_received(MSS)  # only one since last ack
        assert acks == []

    def test_out_of_order_acks_immediately(self, sim):
        manager, acks = make(sim)
        manager.on_out_of_order()
        assert acks == [0]

    def test_timer_not_rearmed_while_pending(self, sim):
        manager, acks = make(sim, delay_ns=1000)
        manager.on_data_received(100)
        sim.run(until=500)
        manager.on_data_received(100)
        sim.run()
        assert acks == [1000]  # original deadline, not pushed out


class TestAdaptiveDelack:
    def _make(self, sim, **kwargs):
        acks = []
        manager = DelayedAckManager(
            sim, MSS, ack_now=lambda: acks.append(sim.now),
            adaptive=True, min_delay_ns=1000, **kwargs,
        )
        return manager, acks

    def test_starts_at_ceiling(self, sim):
        manager, _ = self._make(sim)
        assert manager.current_delay_ns == manager.delay_ns

    def test_fast_arrivals_shrink_the_delay(self, sim):
        manager, _ = self._make(sim)

        def arrivals():
            from repro.sim.process import Timeout

            for _ in range(20):
                manager.on_data_received(100)
                manager.on_ack_piggybacked()  # keep the timer clear
                yield Timeout(10_000)  # 10 us gaps

        sim.spawn(arrivals())
        sim.run()
        assert manager.current_delay_ns < msecs(1)

    def test_delay_floor(self, sim):
        manager, _ = self._make(sim)

        def arrivals():
            from repro.sim.process import Timeout

            for _ in range(50):
                manager.on_data_received(10)
                manager.on_ack_piggybacked()
                yield Timeout(10)

        sim.spawn(arrivals())
        sim.run()
        assert manager.current_delay_ns >= manager.min_delay_ns

    def test_slow_arrivals_recover_toward_ceiling(self, sim):
        manager, _ = self._make(sim)

        def arrivals():
            from repro.sim.process import Timeout

            for _ in range(10):  # fast phase
                manager.on_data_received(10)
                manager.on_ack_piggybacked()
                yield Timeout(1000)
            for _ in range(40):  # slow phase
                manager.on_data_received(10)
                manager.on_ack_piggybacked()
                yield Timeout(msecs(100))

        sim.spawn(arrivals())
        sim.run()
        # Asymptotic recovery toward (not exactly to) the ceiling.
        assert manager.current_delay_ns > 0.9 * manager.delay_ns

    def test_non_adaptive_ignores_gaps(self, sim):
        manager, _ = make(sim, delay_ns=5000)

        def arrivals():
            from repro.sim.process import Timeout

            for _ in range(10):
                manager.on_data_received(10)
                manager.on_ack_piggybacked()
                yield Timeout(10)

        sim.spawn(arrivals())
        sim.run()
        assert manager.current_delay_ns == 5000
