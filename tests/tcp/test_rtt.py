"""Tests for SRTT/RTO estimation."""

from __future__ import annotations

import pytest

from repro.errors import TcpError
from repro.tcp.rtt import RttEstimator
from repro.units import msecs, usecs


class TestRttEstimator:
    def test_first_sample_initializes(self):
        est = RttEstimator(min_rto_ns=usecs(1))
        est.sample(usecs(100))
        assert est.srtt_ns == usecs(100)
        assert est.rttvar_ns == usecs(50)
        assert est.rto_ns == usecs(100) + 4 * usecs(50)

    def test_smoothing_follows_jacobson(self):
        est = RttEstimator(min_rto_ns=usecs(1))
        est.sample(100_000)
        est.sample(200_000)
        assert est.srtt_ns == pytest.approx(0.875 * 100_000 + 0.125 * 200_000)

    def test_converges_to_constant_rtt(self):
        est = RttEstimator(min_rto_ns=usecs(1))
        for _ in range(100):
            est.sample(usecs(50))
        assert est.srtt_ns == pytest.approx(usecs(50), rel=0.01)
        assert est.rttvar_ns == pytest.approx(0, abs=usecs(1))

    def test_rto_floor(self):
        est = RttEstimator(min_rto_ns=msecs(200))
        for _ in range(10):
            est.sample(usecs(10))
        assert est.rto_ns == msecs(200)

    def test_backoff_doubles(self):
        est = RttEstimator()
        before = est.rto_ns
        est.backoff()
        assert est.rto_ns == 2 * before

    def test_backoff_capped(self):
        est = RttEstimator()
        for _ in range(30):
            est.backoff()
        assert est.rto_ns <= msecs(120_000)

    def test_negative_sample_rejected(self):
        with pytest.raises(TcpError):
            RttEstimator().sample(-1)

    def test_invalid_min_rto_rejected(self):
        with pytest.raises(TcpError):
            RttEstimator(min_rto_ns=0)
