"""TCP under Gilbert-Elliott bursty loss (via the fault injector).

Two properties: the byte stream survives correlated loss bursts intact
(SACK + RTO recovery), and the end-to-end estimator's error stays
bounded relative to a lossless baseline instead of going wild.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.faults import FaultInjector, FaultPlan, GilbertElliott
from repro.loadgen.lancet import BenchConfig, run_benchmark
from repro.sim.loop import Simulator
from repro.sim.rng import RngRegistry
from repro.units import msecs
from tests.conftest import PairFactory, drain_reader

SECOND = 10**9

#: Bursty enough to force both fast-retransmit and RTO recovery.
BURSTY = FaultPlan(name="test-bursty", loss=GilbertElliott(
    p_good_bad=0.02, p_bad_good=0.3, loss_good=0.001, loss_bad=0.5,
))


def build_bursty_pair(sim, seed=11, sack=True):
    injector = FaultInjector(sim, BURSTY, RngRegistry(seed=seed))
    factory = PairFactory(sim)
    _, _, a, b = factory.build(
        fault_injector=injector,
        tcp_kwargs={"sack": sack, "min_rto_ns": 2_000_000},
    )
    return a, b, injector


class TestByteStreamIntegrity:
    def test_bulk_transfer_survives_bursts(self, sim):
        a, b, injector = build_bursty_pair(sim)
        total = 300_000
        a.send("bulk", total)
        results = {}
        drain_reader(sim, b, total, results)
        sim.run(until=120 * SECOND)
        assert results["bytes"] == total
        assert b.rcv_nxt == total
        assert a.snd_una == total  # everything delivered AND acked
        # The bursts actually bit: packets died and were repaired.
        drops = sum(hook.drops for hook in injector.link_hooks.values())
        assert drops > 0
        assert a.retransmits + a.sack_retransmits > 0

    def test_rto_only_recovery_also_survives(self, sim):
        a, b, injector = build_bursty_pair(sim, sack=False)
        total = 120_000
        a.send("bulk", total)
        results = {}
        drain_reader(sim, b, total, results)
        sim.run(until=120 * SECOND)
        assert results["bytes"] == total
        assert a.snd_una == total

    @pytest.mark.parametrize("seed", [3, 19, 42])
    def test_integrity_across_burst_patterns(self, seed):
        sim = Simulator()
        a, b, _ = build_bursty_pair(sim, seed=seed)
        total = 100_000
        a.send("bulk", total)
        results = {}
        drain_reader(sim, b, total, results)
        sim.run(until=120 * SECOND)
        assert results["bytes"] == total


@pytest.mark.slow
class TestEstimatorErrorUnderLoss:
    def test_error_stays_bounded_vs_lossless_baseline(self):
        mild = FaultPlan(name="mild-bursty", loss=GilbertElliott(
            p_good_bad=0.002, p_bad_good=0.5, loss_good=0.0001,
            loss_bad=0.05,
        ))
        base = BenchConfig(
            rate_per_sec=8_000.0,
            warmup_ns=msecs(10),
            measure_ns=msecs(60),
            seed=3,
            min_rto_ns=msecs(5),
        )

        def error_fraction(config):
            result = run_benchmark(config)
            assert result.estimate is not None and result.estimate.defined
            assert result.estimate.latency_ns >= 0  # never negative
            measured = result.latency.mean_ns
            return abs(result.estimate.latency_ns - measured) / measured

        clean = error_fraction(base)
        lossy = error_fraction(replace(base, fault_plan=mild))
        # Mild bursty loss may cost accuracy, but the estimate must stay
        # the same order of magnitude as the measurement.
        assert lossy < 1.0
        assert lossy < clean + 0.75
