"""Behavioral tests of the full TCP socket over the simulated network."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import TcpError
from repro.sim.rng import RngRegistry
from repro.tcp.socket import TcpConfig
from tests.conftest import PairFactory, drain_reader

SECOND = 10**9


class TestReliableDelivery:
    def test_single_message(self, sim, pair_factory):
        _, _, a, b = pair_factory.build()
        a.send("hello", 1000)
        results = {}
        drain_reader(sim, b, 1000, results)
        sim.run(until=SECOND)
        assert results["bytes"] == 1000
        assert results["messages"] == ["hello"]

    def test_many_messages_in_order(self, sim, pair_factory):
        _, _, a, b = pair_factory.build()
        sizes = [100, 5000, 1, 20_000, 1448, 333]
        for index, size in enumerate(sizes):
            a.send(index, size)
        results = {}
        drain_reader(sim, b, sum(sizes), results)
        sim.run(until=SECOND)
        assert results["messages"] == list(range(len(sizes)))

    def test_bidirectional_traffic(self, sim, pair_factory):
        _, _, a, b = pair_factory.build()
        a.send("req", 4000)
        b.send("resp", 2000)
        results_a, results_b = {}, {}
        drain_reader(sim, a, 2000, results_a)
        drain_reader(sim, b, 4000, results_b)
        sim.run(until=SECOND)
        assert results_a["messages"] == ["resp"]
        assert results_b["messages"] == ["req"]

    def test_all_bytes_acked_eventually(self, sim, pair_factory):
        _, _, a, b = pair_factory.build()
        a.send("x", 50_000)
        results = {}
        drain_reader(sim, b, 50_000, results)
        sim.run(until=SECOND)
        assert a.snd_una == 50_000
        assert a.unacked_bytes == 0

    def test_send_on_unconnected_socket_rejected(self, sim):
        from repro.host.host import Host
        from repro.tcp.socket import TcpSocket

        host = Host(sim, "h")
        sock = TcpSocket(sim, host, TcpConfig(), conn_id=1, name="lonely")
        with pytest.raises(TcpError):
            sock.send("x", 10)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(1, 30_000), min_size=1, max_size=15))
    def test_arbitrary_message_sizes(self, sizes):
        """Property: any message-size sequence arrives whole and ordered."""
        from repro.sim.loop import Simulator

        sim = Simulator()
        factory = PairFactory(sim)
        _, _, a, b = factory.build()
        for index, size in enumerate(sizes):
            a.send(index, size)
        results = {}
        drain_reader(sim, b, sum(sizes), results)
        sim.run(until=10 * SECOND)
        assert results["bytes"] == sum(sizes)
        assert results["messages"] == list(range(len(sizes)))


class TestNagleBehavior:
    def test_nagle_off_sends_partial_immediately(self, sim, pair_factory):
        _, _, a, b = pair_factory.build(nagle=False)
        a.send("m", 500)
        sim.run(until=1000)  # before any ack could return
        assert a.snd_nxt == 500

    def test_nagle_holds_second_partial(self, sim, pair_factory):
        _, _, a, b = pair_factory.build(nagle=True)
        a.send("m1", 500)
        assert a.snd_nxt == 500  # idle connection: first partial goes
        a.send("m2", 400)
        assert a.snd_nxt == 500  # held: m1 unacked
        sim.run(until=SECOND)
        assert a.snd_nxt == 900  # released by the ack

    def test_nagle_never_holds_full_segments(self, sim, pair_factory):
        _, _, a, b = pair_factory.build(nagle=True)
        mss = a.config.mss
        a.send("m1", 500)
        a.send("m2", 3 * mss)
        # Full segments flow; only the residue is held.
        assert a.snd_nxt == 500 + 3 * mss

    def test_nagle_tail_held_for_large_write(self, sim, pair_factory):
        _, _, a, b = pair_factory.build(
            nagle=True, tcp_kwargs={"initial_cwnd_segments": 40}
        )
        mss = a.config.mss
        size = 11 * mss + 516
        a.send("req", size)
        assert a.snd_nxt == 11 * mss  # tail residue held
        sim.run(until=SECOND)
        assert a.snd_nxt == size

    def test_initial_cwnd_limits_first_burst(self, sim, pair_factory):
        _, _, a, b = pair_factory.build(nagle=True)
        mss = a.config.mss
        a.send("req", 20 * mss)
        # Only the initial window leaves before the first ack.
        assert a.snd_nxt == 10 * mss
        sim.run(until=SECOND)
        assert a.snd_nxt == 20 * mss

    def test_set_nagle_off_releases_held_tail(self, sim, pair_factory):
        _, _, a, b = pair_factory.build(nagle=True)
        a.send("m1", 500)
        a.send("m2", 400)
        assert a.snd_nxt == 500
        a.set_nagle(False)
        assert a.snd_nxt == 900

    def test_nagle_delays_delivery_by_about_a_round_trip(self, sim, pair_factory):
        mss = TcpConfig().mss
        size = 11 * mss + 516
        times = {}
        for nagle in (False, True):
            from repro.sim.loop import Simulator

            fresh = Simulator()
            factory = PairFactory(fresh)
            _, _, a, b = factory.build(nagle=nagle)
            a.send("req", size)
            results = {}
            drain_reader(fresh, b, size, results)
            fresh.run(until=SECOND)
            times[nagle] = results["time"]
        # The Nagle run waits ~1 RTT for the tail; 2x propagation = 10us.
        assert times[True] > times[False] + 10_000


class TestCork:
    def test_cork_holds_everything(self, sim, pair_factory):
        _, _, a, b = pair_factory.build(nagle=False)
        a.cork()
        a.send("m1", 100)
        a.send("m2", 100)
        assert a.snd_nxt == 0
        a.uncork()
        assert a.snd_nxt == 200

    def test_corked_messages_leave_as_one_burst(self, sim, pair_factory):
        _, _, a, b = pair_factory.build(nagle=False)
        a.cork()
        for index in range(5):
            a.send(index, 100)
        a.uncork()
        assert a.segments_sent == 1  # one 500-byte segment


class TestFlowControl:
    def test_sender_respects_receive_window(self, sim, pair_factory):
        _, _, a, b = pair_factory.build(
            tcp_kwargs={"recv_buffer_bytes": 10_000}
        )
        a.send("big", 50_000)
        sim.run(until=SECOND // 10)
        # Receiver app never reads: sender must stop near the window.
        assert b.readable_bytes <= 10_000
        assert a.snd_nxt <= 10_000 + a.config.mss

    def test_reading_reopens_window(self, sim, pair_factory):
        _, _, a, b = pair_factory.build(
            tcp_kwargs={"recv_buffer_bytes": 10_000}
        )
        a.send("big", 50_000)
        results = {}
        drain_reader(sim, b, 50_000, results)
        sim.run(until=SECOND)
        assert results["bytes"] == 50_000

    def test_window_never_negative(self, sim, pair_factory):
        _, _, a, b = pair_factory.build(
            tcp_kwargs={"recv_buffer_bytes": 5000}
        )
        a.send("x", 20_000)
        sim.run(until=SECOND // 100)
        assert b._advertised_window() >= 0


class TestZeroWindowPersistence:
    def test_probes_fire_while_window_closed(self, sim, pair_factory):
        _, _, a, b = pair_factory.build(
            tcp_kwargs={"recv_buffer_bytes": 5_000, "min_rto_ns": 1_000_000}
        )
        a.send("big", 50_000)
        # The first probe waits the initial (conservative, 200 ms) RTO;
        # subsequent probes use the measured RTO with backoff.
        sim.run(until=2 * SECOND)  # receiver app never reads
        assert a.window_probes_sent >= 3
        # Exponential backoff bounds the probe count.
        assert a.window_probes_sent < 80

    def test_transfer_resumes_after_late_read(self, sim, pair_factory):
        from tests.conftest import drain_reader

        _, _, a, b = pair_factory.build(
            tcp_kwargs={"recv_buffer_bytes": 5_000, "min_rto_ns": 1_000_000}
        )
        a.send("big", 30_000)
        results = {}
        sim.call_at(20_000_000, lambda: drain_reader(sim, b, 30_000, results))
        sim.run(until=SECOND)
        assert results["bytes"] == 30_000

    def test_probe_elicits_window_readvertisement(self, sim, pair_factory):
        _, _, a, b = pair_factory.build(
            tcp_kwargs={"recv_buffer_bytes": 5_000, "min_rto_ns": 1_000_000}
        )
        a.send("big", 50_000)
        sim.run(until=30_000_000)
        # The receiver answered probes with pure acks.
        assert b.pure_acks_sent >= a.window_probes_sent

    def test_no_probes_when_window_open(self, sim, pair_factory):
        from tests.conftest import drain_reader

        _, _, a, b = pair_factory.build()
        a.send("m", 20_000)
        results = {}
        drain_reader(sim, b, 20_000, results)
        sim.run(until=SECOND)
        assert a.window_probes_sent == 0

    def test_lossy_window_update_recovered_by_probe(self, sim):
        """With heavy loss and a tiny window, window updates get dropped;
        the persist machinery must still complete the transfer."""
        from repro.sim.rng import RngRegistry
        from tests.conftest import PairFactory, drain_reader

        rng = RngRegistry(21).stream("loss")
        factory = PairFactory(sim)
        _, _, a, b = factory.build(
            loss_probability=0.2,
            loss_rng=rng,
            tcp_kwargs={"recv_buffer_bytes": 4_000, "min_rto_ns": 1_000_000},
        )
        a.send("bulk", 40_000)
        results = {}
        drain_reader(sim, b, 40_000, results)
        sim.run(until=200 * SECOND)
        assert results["bytes"] == 40_000


class TestLossRecovery:
    def _lossy_pair(self, sim, probability, seed=11):
        rng = RngRegistry(seed).stream("loss")
        factory = PairFactory(sim)
        return factory.build(
            loss_probability=probability,
            loss_rng=rng,
            tcp_kwargs={"min_rto_ns": 2_000_000},  # 2 ms for fast tests
        )

    def test_delivery_despite_loss(self, sim):
        _, _, a, b = self._lossy_pair(sim, probability=0.05)
        total = 200_000
        a.send("bulk", total)
        results = {}
        drain_reader(sim, b, total, results)
        sim.run(until=30 * SECOND)
        assert results["bytes"] == total
        assert a.retransmits > 0

    def test_heavy_loss_still_delivers(self, sim):
        _, _, a, b = self._lossy_pair(sim, probability=0.25, seed=3)
        total = 30_000
        a.send("bulk", total)
        results = {}
        drain_reader(sim, b, total, results)
        sim.run(until=120 * SECOND)
        assert results["bytes"] == total

    def test_congestion_window_reacts_to_loss(self, sim):
        _, _, a, b = self._lossy_pair(sim, probability=0.08, seed=5)
        a.send("bulk", 300_000)
        results = {}
        drain_reader(sim, b, 300_000, results)
        sim.run(until=60 * SECOND)
        assert a.cc.losses > 0


class TestIdleRestart:
    def test_idle_connection_restarts_slow_start(self, sim, pair_factory):
        from tests.conftest import drain_reader

        _, _, a, b = pair_factory.build(
            tcp_kwargs={"slow_start_after_idle": True}
        )
        results = {}
        drain_reader(sim, b, 200_000 + 20 * a.config.mss, results)
        # Grow the window with a bulk transfer...
        a.send("bulk", 200_000)
        sim.run(until=SECOND)
        grown = a.cc.cwnd
        assert grown > 10 * a.config.mss
        # ...then go idle well past the RTO and send again.
        sim.call_at(2 * SECOND, lambda: a.send("later", 20 * a.config.mss))
        sim.run(until=3 * SECOND)
        assert a.idle_restarts == 1
        assert results["bytes"] == 200_000 + 20 * a.config.mss

    def test_disabled_by_default(self, sim, pair_factory):
        from tests.conftest import drain_reader

        _, _, a, b = pair_factory.build()
        results = {}
        drain_reader(sim, b, 220_000, results)
        a.send("bulk", 200_000)
        sim.run(until=SECOND)
        grown = a.cc.cwnd
        sim.call_at(2 * SECOND, lambda: a.send("later", 20_000))
        sim.run(until=3 * SECOND)
        assert a.idle_restarts == 0
        assert a.cc.cwnd >= grown

    def test_no_restart_when_gap_within_rto(self, sim, pair_factory):
        from tests.conftest import drain_reader

        _, _, a, b = pair_factory.build(
            tcp_kwargs={"slow_start_after_idle": True}
        )
        results = {}
        drain_reader(sim, b, 240_000, results)
        a.send("bulk", 200_000)
        sim.run(until=SECOND // 10)
        # Well within the (200 ms minimum) RTO.
        sim.call_at(SECOND // 10 + 50_000_000, lambda: a.send("soon", 40_000))
        sim.run(until=SECOND)
        assert a.idle_restarts == 0


class TestFastRetransmit:
    def test_three_dupacks_trigger_one_retransmit(self, sim, pair_factory):
        from repro.tcp.segment import Segment

        _, _, a, b = pair_factory.build()
        a.send("bulk", 10 * a.config.mss)
        assert a.snd_nxt > 0

        def dupack():
            return Segment(
                conn_id=a.conn_id, src=b.host.name, dst=a.host.name,
                seq=0, payload_len=0, ack=a.snd_una,
                wnd=b.config.recv_buffer_bytes,
            )

        before = a.retransmits
        a.segment_arrived(dupack())
        a.segment_arrived(dupack())
        assert a.retransmits == before  # two dupacks: not yet
        a.segment_arrived(dupack())
        assert a.retransmits == before + 1  # third triggers
        assert a.cc.losses == 1
        a.segment_arrived(dupack())
        assert a.retransmits == before + 1  # no re-trigger past three

    def test_new_ack_resets_dupack_count(self, sim, pair_factory):
        from repro.tcp.segment import Segment

        _, _, a, b = pair_factory.build()
        a.send("bulk", 10 * a.config.mss)

        def ack(value):
            return Segment(
                conn_id=a.conn_id, src=b.host.name, dst=a.host.name,
                seq=0, payload_len=0, ack=value,
                wnd=b.config.recv_buffer_bytes,
            )

        a.segment_arrived(ack(a.snd_una))
        a.segment_arrived(ack(a.snd_una))
        a.segment_arrived(ack(a.snd_una + a.config.mss))  # progress
        a.segment_arrived(ack(a.snd_una))
        a.segment_arrived(ack(a.snd_una))
        assert a.retransmits == 0  # count restarted after progress


class TestReadSemantics:
    def test_partial_reads_defer_message_completion(self, sim, pair_factory):
        _, _, a, b = pair_factory.build()
        a.send("msg", 6000)
        sim.run(until=SECOND // 10)
        nbytes, messages = b.read(max_bytes=4000)
        assert nbytes == 4000
        assert messages == []  # not fully consumed yet
        nbytes, messages = b.read()
        assert nbytes == 2000
        assert messages == ["msg"]

    def test_read_on_empty_socket(self, sim, pair_factory):
        _, _, a, b = pair_factory.build()
        assert b.read() == (0, [])

    def test_interleaved_reads_preserve_order(self, sim, pair_factory):
        _, _, a, b = pair_factory.build()
        a.send("m1", 1000)
        a.send("m2", 1000)
        sim.run(until=SECOND // 10)
        collected = []
        while True:
            nbytes, messages = b.read(max_bytes=300)
            collected.extend(messages)
            if nbytes == 0:
                break
        assert collected == ["m1", "m2"]


class TestInstrumentedQueues:
    def test_unacked_queue_counts_bytes(self, sim, pair_factory):
        _, _, a, b = pair_factory.build()
        a.send("m", 5000)
        assert a.qs_unacked.size == 5000
        results = {}
        drain_reader(sim, b, 5000, results)
        sim.run(until=SECOND)
        assert a.qs_unacked.size == 0
        assert a.qs_unacked.total == 5000

    def test_unread_queue_tracks_arrival_to_read(self, sim, pair_factory):
        _, _, a, b = pair_factory.build()
        a.send("m", 5000)
        sim.run(until=SECOND // 10)
        assert b.qs_unread.size == 5000  # arrived, not read
        b.read()
        assert b.qs_unread.size == 0
        assert b.qs_unread.total == 5000

    def test_ackdelay_queue_drains_on_ack(self, sim, pair_factory):
        _, _, a, b = pair_factory.build()
        a.send("m", 5000)
        sim.run(until=SECOND)
        # All acks sent by now (quickack / delack timer / piggyback).
        assert b.qs_ackdelay.size == 0
        assert b.qs_ackdelay.total == 5000

    def test_conservation_across_queues(self, sim, pair_factory):
        """Bytes through unacked == bytes through unread == bytes through
        ackdelay == bytes sent, for a fully drained connection."""
        _, _, a, b = pair_factory.build()
        total = 0
        for index, size in enumerate([100, 4000, 17_000, 1448, 93]):
            a.send(index, size)
            total += size
        results = {}
        drain_reader(sim, b, total, results)
        sim.run(until=SECOND)
        assert a.qs_unacked.total == total
        assert b.qs_unread.total == total
        assert b.qs_ackdelay.total == total


class TestRttEstimation:
    def test_small_sends_inflate_rtt_via_delayed_acks(self, sim, pair_factory):
        """The paper's §2 point: RTT is a poor end-to-end proxy partly
        because delayed acks inflate it.  Small one-way sends only get
        acked by the 40 ms delack timer, so SRTT lands near 40 ms even
        though the wire RTT is 100 us."""
        _, _, a, b = pair_factory.build(propagation_delay_ns=50_000)
        results = {}
        drain_reader(sim, b, 10 * 1000, results)
        for index in range(10):
            sim.call_at(index * 10**7, lambda: a.send("m", 1000))
        sim.run(until=SECOND)
        assert a.rtt.samples > 0
        assert a.rtt.srtt_ns > 10_000_000  # orders beyond the wire RTT

    def test_quickacked_sends_track_wire_rtt(self, sim, pair_factory):
        """Two-MSS sends trigger immediate acks, so SRTT approximates
        the real network round trip."""
        _, _, a, b = pair_factory.build(propagation_delay_ns=50_000)
        mss = a.config.mss
        total = 10 * 2 * mss
        results = {}
        drain_reader(sim, b, total, results)
        for index in range(10):
            sim.call_at(index * 10**7, lambda: a.send("m", 2 * mss))
        sim.run(until=SECOND)
        assert a.rtt.samples > 0
        assert 100_000 <= a.rtt.srtt_ns < 400_000
