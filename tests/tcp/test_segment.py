"""Tests for TCP segments: slicing and merging."""

from __future__ import annotations

import pytest

from repro.errors import TcpError
from repro.tcp.segment import Segment


def seg(seq=0, length=1000, ack=0, psh=False, retransmit=False, options=None):
    return Segment(
        conn_id=1, src="a", dst="b", seq=seq, payload_len=length,
        ack=ack, wnd=4096, psh=psh, is_retransmit=retransmit,
        options=options or {},
    )


class TestSplit:
    def test_no_split_needed(self):
        segment = seg(length=100)
        head, rest = segment.split_at(1448)
        assert head is segment
        assert rest is None

    def test_split_partitions_payload(self):
        head, rest = seg(seq=1000, length=2000).split_at(1448)
        assert head.seq == 1000 and head.payload_len == 1448
        assert rest.seq == 2448 and rest.payload_len == 552
        assert head.end_seq == rest.seq

    def test_options_stay_on_tail(self):
        segment = seg(length=2000, options={"e2e": object()})
        head, rest = segment.split_at(1448)
        assert head.options == {}
        assert "e2e" in rest.options

    def test_psh_stays_on_tail(self):
        head, rest = seg(length=2000, psh=True).split_at(1448)
        assert not head.psh
        assert rest.psh

    def test_invalid_split_size(self):
        with pytest.raises(TcpError):
            seg().split_at(0)


class TestMerge:
    def test_contiguous_merge(self):
        merged = seg(seq=0, length=1448, ack=5).merge(seg(seq=1448, length=1448, ack=9))
        assert merged.payload_len == 2896
        assert merged.ack == 9
        assert merged.wire_count == 2

    def test_merge_requires_contiguity(self):
        a = seg(seq=0, length=1448)
        assert not a.can_merge(seg(seq=2000))
        with pytest.raises(TcpError):
            a.merge(seg(seq=2000))

    def test_merge_rejects_pure_acks_and_retransmits(self):
        a = seg(seq=0, length=1448)
        assert not a.can_merge(seg(seq=1448, length=0))
        assert not a.can_merge(seg(seq=1448, retransmit=True))

    def test_freshest_options_win(self):
        a = seg(seq=0, length=1448, options={"e2e": "old"})
        b = seg(seq=1448, length=1448, options={"e2e": "new"})
        assert a.merge(b).options["e2e"] == "new"

    def test_psh_survives_merge(self):
        merged = seg(seq=0, length=1448).merge(seg(seq=1448, length=1448, psh=True))
        assert merged.psh

    def test_split_then_merge_roundtrip(self):
        original = seg(length=3000, ack=7, psh=True)
        head, rest = original.split_at(1448)
        rebuilt = head.merge(rest)
        assert rebuilt.payload_len == original.payload_len
        assert rebuilt.seq == original.seq
        assert rebuilt.psh == original.psh


class TestProperties:
    def test_pure_ack(self):
        assert seg(length=0).is_pure_ack
        assert not seg(length=1).is_pure_ack

    def test_options_bytes(self):
        class Opt:
            WIRE_BYTES = 36

        assert seg(options={"e2e": Opt()}).options_bytes() == 36
        assert seg().options_bytes() == 0
