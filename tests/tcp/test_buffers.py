"""Tests for stream bookkeeping and reassembly."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.errors import TcpError
from repro.tcp.buffers import ByteStream, ReassemblyQueue


class TestByteStream:
    def test_append_advances_offsets(self):
        stream = ByteStream()
        assert stream.append(100, "a") == (0, 100)
        assert stream.append(50, "b") == (100, 150)
        assert stream.write_seq == 150

    def test_pop_completed_by_read_offset(self):
        stream = ByteStream()
        stream.append(100, "a")
        stream.append(50, "b")
        assert stream.pop_completed(99) == []
        assert stream.pop_completed(100) == ["a"]
        assert stream.pop_completed(150) == ["b"]
        assert stream.pop_completed(150) == []

    def test_pop_multiple_at_once(self):
        stream = ByteStream()
        for name in "abc":
            stream.append(10, name)
        assert stream.pop_completed(30) == ["a", "b", "c"]

    def test_empty_message_rejected(self):
        with pytest.raises(TcpError):
            ByteStream().append(0, "x")

    def test_boundaries_in_range(self):
        stream = ByteStream()
        stream.append(10, "a")
        stream.append(10, "b")
        stream.append(10, "c")
        assert stream.boundaries_in(0, 30) == 3
        assert stream.boundaries_in(10, 20) == 1
        assert stream.boundaries_in(25, 30) == 1

    def test_pending_messages(self):
        stream = ByteStream()
        stream.append(10, "a")
        stream.append(10, "b")
        assert stream.pending_messages() == 2
        stream.pop_completed(10)
        assert stream.pending_messages() == 1

    @given(st.lists(st.integers(1, 1000), min_size=1, max_size=50))
    def test_all_messages_recovered_in_order(self, sizes):
        stream = ByteStream()
        for index, size in enumerate(sizes):
            stream.append(size, index)
        recovered = stream.pop_completed(sum(sizes))
        assert recovered == list(range(len(sizes)))


class TestReassemblyQueue:
    def test_in_order_passthrough(self):
        queue = ReassemblyQueue()
        assert queue.advance(100) == 100

    def test_hole_then_fill(self):
        queue = ReassemblyQueue()
        queue.add(100, 200)           # out of order
        assert queue.advance(50) == 50
        assert queue.advance(100) == 200

    def test_multiple_ranges_merge(self):
        queue = ReassemblyQueue()
        queue.add(200, 300)
        queue.add(100, 200)
        assert queue.advance(100) == 300
        assert len(queue) == 0

    def test_duplicates_dropped(self):
        queue = ReassemblyQueue()
        queue.add(100, 200)
        queue.add(100, 200)
        assert queue.advance(100) == 200
        assert len(queue) == 0

    def test_overlap_tolerated(self):
        queue = ReassemblyQueue()
        queue.add(100, 250)
        queue.add(200, 300)
        assert queue.advance(100) == 300

    def test_empty_range_rejected(self):
        with pytest.raises(TcpError):
            ReassemblyQueue().add(10, 10)

    @given(st.permutations(list(range(10))))
    def test_any_arrival_order_reassembles(self, order):
        """Segments [k*100,(k+1)*100) arriving in any order end at 1000."""
        queue = ReassemblyQueue()
        rcv_nxt = 0
        for index in order:
            lo, hi = index * 100, (index + 1) * 100
            if lo == rcv_nxt:
                rcv_nxt = queue.advance(hi)
            elif lo > rcv_nxt:
                queue.add(lo, hi)
            else:
                rcv_nxt = queue.advance(max(rcv_nxt, hi))
        assert rcv_nxt == 1000
