"""Tests for selective acknowledgments (RFC 2018)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.loop import Simulator
from repro.sim.rng import RngRegistry
from repro.tcp.buffers import ReassemblyQueue
from repro.tcp.segment import Segment
from tests.conftest import PairFactory, drain_reader

SECOND = 10**9


class TestReassemblyBlocks:
    def test_no_holdings_no_blocks(self):
        assert ReassemblyQueue().blocks() == ()

    def test_blocks_report_held_ranges(self):
        queue = ReassemblyQueue()
        queue.add(100, 200)
        queue.add(400, 500)
        assert queue.blocks() == ((100, 200), (400, 500))

    def test_adjacent_ranges_coalesce(self):
        queue = ReassemblyQueue()
        queue.add(200, 300)
        queue.add(100, 200)
        assert queue.blocks() == ((100, 300),)

    def test_limit(self):
        queue = ReassemblyQueue()
        for index in range(5):
            queue.add(index * 1000, index * 1000 + 100)
        assert len(queue.blocks(limit=3)) == 3


class TestScoreboard:
    def _sock(self, sim):
        factory = PairFactory(sim)
        _, _, a, b = factory.build(tcp_kwargs={"sack": True})
        return a, b

    def test_record_and_holes(self, sim):
        a, b = self._sock(sim)
        a.send("bulk", 10 * a.config.mss)
        mss = a.config.mss
        a._record_sacked([(2 * mss, 4 * mss), (6 * mss, 7 * mss)])
        hole = a._next_hole(0)
        assert hole == (0, mss)
        hole = a._next_hole(4 * mss)
        assert hole == (4 * mss, 5 * mss)

    def test_cumulative_ack_clears_scoreboard(self, sim):
        a, b = self._sock(sim)
        a.send("bulk", 10 * a.config.mss)
        mss = a.config.mss
        a._record_sacked([(2 * mss, 4 * mss)])
        a._process_ack(5 * mss)
        assert a._sacked == []

    def test_overlapping_blocks_merge(self, sim):
        a, b = self._sock(sim)
        a.send("bulk", 10 * a.config.mss)
        a._record_sacked([(1000, 3000)])
        a._record_sacked([(2000, 5000)])
        assert a._sacked == [(1000, 5000)]


class TestSackRecovery:
    def test_dupacks_with_blocks_repair_holes(self, sim):
        factory = PairFactory(sim)
        _, _, a, b = factory.build(tcp_kwargs={"sack": True})
        mss = a.config.mss
        a.send("bulk", 10 * mss)

        def dupack(blocks):
            return Segment(
                conn_id=a.conn_id, src=b.host.name, dst=a.host.name,
                seq=0, payload_len=0, ack=a.snd_una,
                wnd=b.config.recv_buffer_bytes, sack_blocks=blocks,
            )

        # The receiver reports holding [2mss, 5mss): segments 0-1 lost.
        for _ in range(3):
            a.segment_arrived(dupack(((2 * mss, 5 * mss),)))
        assert a.sack_retransmits == 1
        # Further dupacks repair the next hole instead of re-sending
        # the same one.
        a.segment_arrived(dupack(((2 * mss, 5 * mss),)))
        assert a.sack_retransmits == 2
        assert a._recovery_rtx_upto == 2 * mss

    def test_sack_delivery_under_loss(self, sim):
        rng = RngRegistry(13).stream("loss")
        factory = PairFactory(sim)
        _, _, a, b = factory.build(
            loss_probability=0.08, loss_rng=rng,
            tcp_kwargs={"sack": True, "min_rto_ns": 2_000_000},
        )
        total = 200_000
        a.send("bulk", total)
        results = {}
        drain_reader(sim, b, total, results)
        sim.run(until=60 * SECOND)
        assert results["bytes"] == total
        assert a.sack_retransmits > 0

    def test_sack_recovers_faster_than_newreno(self):
        """Same loss pattern: SACK completes the transfer sooner."""
        times = {}
        for sack in (False, True):
            sim = Simulator()
            rng = RngRegistry(17).stream("loss")
            factory = PairFactory(sim)
            _, _, a, b = factory.build(
                loss_probability=0.06, loss_rng=rng,
                tcp_kwargs={"sack": sack, "min_rto_ns": 5_000_000},
            )
            total = 400_000
            a.send("bulk", total)
            results = {}
            drain_reader(sim, b, total, results)
            sim.run(until=120 * SECOND)
            assert results["bytes"] == total
            times[sack] = results["time"]
        assert times[True] < times[False]

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 50), loss=st.floats(0.02, 0.12))
    def test_sack_never_breaks_delivery(self, seed, loss):
        sim = Simulator()
        rng = RngRegistry(seed).stream("loss")
        factory = PairFactory(sim)
        _, _, a, b = factory.build(
            loss_probability=loss, loss_rng=rng,
            tcp_kwargs={"sack": True, "min_rto_ns": 2_000_000},
        )
        total = 80_000
        a.send("bulk", total)
        results = {}
        drain_reader(sim, b, total, results)
        sim.run(until=120 * SECOND)
        assert results["bytes"] == total


class TestSackWireAccounting:
    def test_blocks_cost_option_bytes(self):
        segment = Segment(
            conn_id=1, src="a", dst="b", seq=0, payload_len=0,
            ack=0, wnd=0, sack_blocks=((100, 200), (400, 500)),
        )
        assert segment.options_bytes() == 2 + 8 * 2

    def test_merge_keeps_freshest_blocks(self):
        a = Segment(conn_id=1, src="a", dst="b", seq=0, payload_len=1448,
                    ack=0, wnd=0, sack_blocks=((1, 2),))
        b = Segment(conn_id=1, src="a", dst="b", seq=1448, payload_len=1448,
                    ack=0, wnd=0, sack_blocks=((3, 4),))
        assert a.merge(b).sack_blocks == ((3, 4),)
