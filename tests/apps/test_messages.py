"""Tests for request/response descriptors."""

from __future__ import annotations

import pytest

from repro.apps import resp
from repro.apps.messages import Request, Response
from repro.errors import WorkloadError


class TestRequest:
    def test_set_wire_bytes_exact(self):
        request = Request(kind="SET", key="k" * 16, value_bytes=16384,
                          created_at=0)
        assert request.wire_bytes == resp.set_command_bytes(16, 16384)

    def test_get_wire_bytes_exact(self):
        request = Request(kind="GET", key="k" * 16, value_bytes=16384,
                          created_at=0)
        assert request.wire_bytes == resp.get_command_bytes(16)

    def test_invalid_kind_rejected(self):
        with pytest.raises(WorkloadError):
            Request(kind="DEL", key="k", value_bytes=0, created_at=0)

    def test_empty_key_rejected(self):
        with pytest.raises(WorkloadError):
            Request(kind="GET", key="", value_bytes=0, created_at=0)

    def test_ids_unique(self):
        a = Request(kind="GET", key="k", value_bytes=0, created_at=0)
        b = Request(kind="GET", key="k", value_bytes=0, created_at=0)
        assert a.request_id != b.request_id


class TestResponse:
    def test_set_reply_is_plus_ok(self):
        request = Request(kind="SET", key="k", value_bytes=100, created_at=0)
        response = Response(request, served_at=10)
        assert response.wire_bytes == len(b"+OK\r\n")

    def test_get_reply_carries_value(self):
        request = Request(kind="GET", key="k", value_bytes=0, created_at=0)
        response = Response(request, served_at=10, value_bytes=16384)
        assert response.wire_bytes == resp.bulk_reply_bytes(16384)

    def test_get_miss_is_null_bulk(self):
        request = Request(kind="GET", key="k", value_bytes=0, created_at=0)
        response = Response(request, served_at=10, value_bytes=None)
        assert response.wire_bytes == 5
