"""Tests for the key-value store."""

from __future__ import annotations

import pytest

from repro.apps.kvstore import KVStore
from repro.errors import WorkloadError


class TestKVStore:
    def test_set_get(self):
        store = KVStore()
        store.set("k", 100)
        assert store.get("k") == 100

    def test_miss_returns_none(self):
        store = KVStore()
        assert store.get("missing") is None
        assert store.hits == 0
        assert store.gets == 1

    def test_overwrite_updates_memory(self):
        store = KVStore()
        store.set("k", 100)
        store.set("k", 50)
        assert store.bytes_stored == 50
        assert len(store) == 1

    def test_delete(self):
        store = KVStore()
        store.set("k", 100)
        assert store.delete("k")
        assert not store.delete("k")
        assert store.bytes_stored == 0
        assert store.get("k") is None

    def test_negative_size_rejected(self):
        with pytest.raises(WorkloadError):
            KVStore().set("k", -1)

    def test_statistics(self):
        store = KVStore()
        store.set("a", 1)
        store.set("b", 2)
        store.get("a")
        store.get("zzz")
        assert store.sets == 2
        assert store.gets == 2
        assert store.hits == 1
        assert store.bytes_stored == 3
