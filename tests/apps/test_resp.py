"""Tests for the RESP protocol implementation."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.apps import resp
from repro.errors import ProtocolError


class TestEncoding:
    def test_command_encoding(self):
        assert resp.encode_command(b"GET", b"key") == b"*2\r\n$3\r\nGET\r\n$3\r\nkey\r\n"

    def test_simple_string(self):
        assert resp.encode_simple_string(b"OK") == b"+OK\r\n"

    def test_simple_string_rejects_crlf(self):
        with pytest.raises(ProtocolError):
            resp.encode_simple_string(b"a\r\nb")

    def test_error(self):
        assert resp.encode_error(b"ERR nope") == b"-ERR nope\r\n"

    def test_integer(self):
        assert resp.encode_integer(42) == b":42\r\n"
        assert resp.encode_integer(-1) == b":-1\r\n"

    def test_bulk(self):
        assert resp.encode_bulk_reply(b"abc") == b"$3\r\nabc\r\n"
        assert resp.encode_bulk_reply(None) == b"$-1\r\n"

    def test_empty_command_rejected(self):
        with pytest.raises(ProtocolError):
            resp.encode_command()


class TestWireSizes:
    """The size helpers must agree exactly with the real encoder."""

    def test_set_command_size_matches_encoding(self):
        key, value = b"k" * 16, b"v" * 16384
        encoded = resp.encode_command(b"SET", key, value)
        assert len(encoded) == resp.set_command_bytes(16, 16384)

    def test_get_command_size_matches_encoding(self):
        encoded = resp.encode_command(b"GET", b"k" * 16)
        assert len(encoded) == resp.get_command_bytes(16)

    def test_simple_reply_size(self):
        assert resp.simple_reply_bytes() == len(b"+OK\r\n")

    def test_bulk_reply_sizes(self):
        assert resp.bulk_reply_bytes(16384) == len(resp.encode_bulk_reply(b"v" * 16384))
        assert resp.bulk_reply_bytes(None) == len(resp.encode_bulk_reply(None))

    @given(st.integers(0, 10), st.integers(0, 100_000))
    def test_size_formula_always_matches(self, key_len, value_len):
        key, value = b"k" * max(1, key_len), b"v" * value_len
        encoded = resp.encode_command(b"SET", key, value)
        assert len(encoded) == resp.set_command_bytes(len(key), value_len)


class TestParser:
    def test_parses_simple_string(self):
        parser = resp.RespParser()
        assert parser.feed(b"+OK\r\n") == [b"OK"]

    def test_parses_command_array(self):
        parser = resp.RespParser()
        values = parser.feed(resp.encode_command(b"SET", b"key", b"value"))
        assert values == [[b"SET", b"key", b"value"]]

    def test_parses_integer_and_error(self):
        parser = resp.RespParser()
        assert parser.feed(b":42\r\n") == [42]
        assert parser.feed(b"-ERR bad\r\n") == [(b"error", b"ERR bad")]

    def test_parses_null_bulk(self):
        parser = resp.RespParser()
        assert parser.feed(b"$-1\r\n") == [None]

    def test_incremental_feeding(self):
        parser = resp.RespParser()
        data = resp.encode_command(b"GET", b"k")
        for byte_index in range(len(data) - 1):
            chunk = data[byte_index:byte_index + 1]
            assert parser.feed(chunk) == []
        assert parser.feed(data[-1:]) == [[b"GET", b"k"]]

    def test_multiple_values_in_one_feed(self):
        parser = resp.RespParser()
        blob = b"+OK\r\n" + b":7\r\n" + resp.encode_command(b"GET", b"x")
        assert parser.feed(blob) == [b"OK", 7, [b"GET", b"x"]]

    def test_pending_bytes(self):
        parser = resp.RespParser()
        parser.feed(b"$10\r\nabc")
        assert parser.pending_bytes == 8

    def test_unknown_marker_rejected(self):
        parser = resp.RespParser()
        with pytest.raises(ProtocolError):
            parser.feed(b"?huh\r\n")

    def test_bad_bulk_terminator_rejected(self):
        parser = resp.RespParser()
        with pytest.raises(ProtocolError):
            parser.feed(b"$3\r\nabcXX")

    @given(
        st.lists(
            st.binary(min_size=1, max_size=200).filter(lambda b: b"\r" not in b),
            min_size=1,
            max_size=8,
        )
    )
    def test_roundtrip_any_command(self, args):
        parser = resp.RespParser()
        values = parser.feed(resp.encode_command(*args))
        assert values == [list(args)]
        assert parser.pending_bytes == 0

    @given(st.binary(max_size=500), st.integers(1, 7))
    def test_chunked_roundtrip(self, value, chunk_size):
        """Bulk replies survive arbitrary chunking."""
        parser = resp.RespParser()
        data = resp.encode_bulk_reply(value)
        collected = []
        for start in range(0, len(data), chunk_size):
            collected.extend(parser.feed(data[start:start + chunk_size]))
        assert collected == [value]
