"""Integration tests: Redis-like server + client over the real stack."""

from __future__ import annotations

import pytest

from repro.apps.kvstore import KVStore
from repro.apps.messages import Request
from repro.apps.redis_client import ClientConfig, RedisClient
from repro.apps.redis_server import RedisServer, ServerConfig
from repro.errors import WorkloadError

SECOND = 10**9


def build_app_pair(sim, pair_factory, nagle=False, client_config=None,
                   server_config=None):
    client_host, server_host, sock_a, sock_b = pair_factory.build(nagle=nagle)
    server = RedisServer(sim, server_host, sock_b, store=KVStore(),
                         config=server_config)
    client = RedisClient(sim, client_host, sock_a, config=client_config)
    return client, server


def fixed_schedule(kinds_and_times, key="k" * 16, value_bytes=4096):
    return [
        (when, Request(kind=kind, key=key, value_bytes=value_bytes,
                       created_at=when))
        for when, kind in kinds_and_times
    ]


class TestRequestResponse:
    def test_single_set_roundtrip(self, sim, pair_factory):
        client, server = build_app_pair(sim, pair_factory)
        server.start()
        client.start(fixed_schedule([(1000, "SET")]))
        sim.run(until=SECOND)
        assert client.responses_received == 1
        record = client.records[0]
        assert record.kind == "SET"
        assert record.latency_ns > 0
        assert server.store.get("k" * 16) == 4096

    def test_get_returns_stored_size(self, sim, pair_factory):
        client, server = build_app_pair(sim, pair_factory)
        server.store.set("k" * 16, 4096)
        server.start()
        client.start(fixed_schedule([(1000, "GET")]))
        sim.run(until=SECOND)
        assert client.responses_received == 1

    def test_pipeline_of_requests_all_answered_in_order(self, sim, pair_factory):
        client, server = build_app_pair(sim, pair_factory)
        server.start()
        schedule = fixed_schedule(
            [(1000 + i * 50_000, "SET") for i in range(20)]
        )
        ids = [request.request_id for _, request in schedule]
        client.start(schedule)
        sim.run(until=SECOND)
        assert client.responses_received == 20
        assert [r.request_id for r in client.records] == ids
        assert server.requests_served == 20

    def test_latency_includes_client_queue_time(self, sim, pair_factory):
        client, server = build_app_pair(sim, pair_factory)
        server.start()
        client.start(fixed_schedule([(1000, "SET")]))
        sim.run(until=SECOND)
        record = client.records[0]
        assert record.latency_ns >= record.send_latency_ns

    def test_closed_loop_one_outstanding(self, sim, pair_factory):
        client, server = build_app_pair(
            sim, pair_factory, client_config=ClientConfig(closed_loop=True)
        )
        server.start()
        schedule = fixed_schedule([(1000, "SET"), (1001, "SET"), (1002, "SET")])
        client.start(schedule)
        sim.run(until=SECOND)
        assert client.responses_received == 3
        # Each request was sent only after the previous response.
        completions = [r.completed_at for r in client.records]
        assert completions == sorted(completions)

    def test_nagle_coalescing_creates_server_batches(self, sim, pair_factory):
        """With Nagle on, small requests issued back-to-back coalesce in
        the client's send buffer (held behind the first unacked one) and
        arrive together, so the server processes them as a batch — the
        sender-side batching that amortizes the server's per-iteration
        cost in Figure 4a."""
        client, server = build_app_pair(sim, pair_factory, nagle=True)
        server.start()
        schedule = fixed_schedule([(1000, "SET") for _ in range(8)],
                                  value_bytes=64)
        client.start(schedule)
        sim.run(until=SECOND)
        assert server.requests_served == 8
        assert server.mean_batch_size > 2.0

    def test_nagle_off_serves_requests_individually(self, sim, pair_factory):
        """Without Nagle each small request leaves immediately as its
        own pushed packet and the (unloaded) server keeps up one by
        one."""
        client, server = build_app_pair(sim, pair_factory, nagle=False)
        server.start()
        schedule = fixed_schedule([(1000, "SET") for _ in range(8)],
                                  value_bytes=64)
        client.start(schedule)
        sim.run(until=SECOND)
        assert server.requests_served == 8
        assert server.mean_batch_size < 2.0


class TestServerConfig:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            ServerConfig(alpha_ns=-1).validate()
        with pytest.raises(WorkloadError):
            ServerConfig(read_chunk_bytes=0).validate()

    def test_read_chunk_bounds_iteration(self, sim, pair_factory):
        client, server = build_app_pair(
            sim, pair_factory,
            server_config=ServerConfig(read_chunk_bytes=1000),
        )
        server.start()
        client.start(fixed_schedule([(1000, "SET")], value_bytes=4096))
        sim.run(until=SECOND)
        assert client.responses_received == 1
        # A >4KiB request at 1000B per read needs several iterations.
        assert server.iterations >= 4


class TestBoundedBatching:
    def test_bound_limits_per_iteration_batch(self, sim, pair_factory):
        client, server = build_app_pair(
            sim, pair_factory, nagle=True,
            server_config=ServerConfig(max_batch_requests=2),
        )
        server.start()
        schedule = fixed_schedule([(1000, "SET") for _ in range(8)],
                                  value_bytes=64)
        client.start(schedule)
        sim.run(until=SECOND)
        assert server.requests_served == 8
        assert max(server.batch_sizes) <= 2

    def test_unbounded_batches_freely(self, sim, pair_factory):
        client, server = build_app_pair(sim, pair_factory, nagle=True)
        server.start()
        schedule = fixed_schedule([(1000, "SET") for _ in range(8)],
                                  value_bytes=64)
        client.start(schedule)
        sim.run(until=SECOND)
        assert max(server.batch_sizes) > 2

    def test_bound_validation(self):
        with pytest.raises(WorkloadError):
            ServerConfig(max_batch_requests=0).validate()

    def test_backlog_preserves_order(self, sim, pair_factory):
        client, server = build_app_pair(
            sim, pair_factory, nagle=True,
            server_config=ServerConfig(max_batch_requests=1),
        )
        server.start()
        schedule = fixed_schedule([(1000, "SET") for _ in range(6)],
                                  value_bytes=64)
        ids = [request.request_id for _, request in schedule]
        client.start(schedule)
        sim.run(until=SECOND)
        assert [r.request_id for r in client.records] == ids


class TestHintIntegration:
    def test_hint_session_tracks_outstanding(self, sim, pair_factory):
        from repro.core.hints import HintSession

        client_host, server_host, sock_a, sock_b = pair_factory.build()
        hints = HintSession(client_host.clock)
        server = RedisServer(sim, server_host, sock_b)
        client = RedisClient(sim, client_host, sock_a, hint_session=hints)
        server.start()
        client.start(fixed_schedule([(1000, "SET"), (2000, "SET")]))
        sim.run(until=SECOND)
        assert hints.outstanding == 0
        assert hints.state.total == 2
