"""Golden-digest equivalence harness for the hot-path optimization pass.

The optimization work in ``sim/``, ``tcp/``, ``net/`` and ``core/`` is
allowed to change *how fast* the pipeline runs, never *what* it
computes.  This module pins that down: a handful of representative runs
(a Figure 2 VM cell, a Figure 4a sweep point, a faults-on chaos run) are
reduced to content digests — a canonical-JSON SHA-256 of the full
:class:`~repro.loadgen.lancet.RunResult` tree and of the emitted
``repro-trace-v1`` stream — and the digests captured *before* the
optimization pass are committed in ``test_equivalence.py``.  Any
optimization that perturbs a single float, counter, or trace record
changes a digest and fails the suite.

Run ``PYTHONPATH=src python tests/perf/golden.py`` to print the current
tree's digests (e.g. after an intentional semantic change, to refresh
the goldens — say so in the commit message).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import replace

from repro.experiments.fig2 import fig2_config
from repro.experiments.fig4a import default_config as fig4a_config
from repro.faults import named_plan
from repro.loadgen.lancet import BenchConfig, run_benchmark
from repro.units import msecs


def equivalence_configs() -> dict[str, BenchConfig]:
    """The pinned run set: one config per pipeline regime.

    Windows are deliberately short — the suite runs under tier-1 — but
    long enough that every hot path fires (GRO, delack, exchange ticks,
    counter sampling, and for the faults run: loss, jitter, recovery).
    """
    return {
        "fig2_vm_nagle": replace(
            fig2_config(vm=True, nagle=True, seed=1, measure_ns=msecs(20)),
            warmup_ns=msecs(10),
        ),
        "fig4a_35k": replace(
            fig4a_config(measure_ns=msecs(20)),
            rate_per_sec=35_000.0,
            warmup_ns=msecs(10),
        ),
        "faults_mixed": BenchConfig(
            rate_per_sec=15_000.0,
            fault_plan=named_plan("mixed"),
            min_rto_ns=msecs(5),
            warmup_ns=msecs(10),
            measure_ns=msecs(30),
            seed=3,
        ),
    }


def canonical_json(obj) -> str:
    """Canonical JSON for digesting: sorted keys, no whitespace.

    Dataclass trees (RunResult and everything it embeds) are flattened
    via :func:`dataclasses.asdict`; NaN serializes as the ``NaN`` token,
    which is fine for digesting (repr is deterministic).
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        obj = dataclasses.asdict(obj)
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), default=repr)


def digest(obj) -> str:
    """SHA-256 hex digest of :func:`canonical_json`."""
    return hashlib.sha256(canonical_json(obj).encode()).hexdigest()


def run_plain(config: BenchConfig, backend=None):
    """One run with every instrumentation layer off (the default).

    ``backend`` selects the batch pipeline; the digest must not notice.
    """
    return run_benchmark(config, backend=backend)


def experiment_shapes() -> dict[str, object]:
    """Digest-pinned *experiment* runs: realistic many-flow traffic.

    The bench shapes above exercise the single-connection pipeline;
    these cover the fan-in (N flows into one server) and time-varying
    (load walk under three policies) experiments, so backend and
    sharding changes are equivalence-checked against the traffic
    patterns the batch pipeline was built for.  Windows are shortened
    to tier-1 size, same as the bench shapes.
    """
    from repro.experiments.bottleneck import BottleneckConfig
    from repro.experiments.fanin import FaninConfig
    from repro.experiments.timevarying import PhasePlan

    return {
        "fanin_4c": FaninConfig(warmup_ns=msecs(10), measure_ns=msecs(40)),
        "timevarying_walk": PhasePlan(phase_ns=msecs(40)),
        "bottleneck_4f": BottleneckConfig(
            warmup_ns=msecs(10), measure_ns=msecs(30)
        ),
    }


def run_experiment(name: str, backend=None):
    """Run one experiment shape; returns its result dataclass tree."""
    shape = experiment_shapes()[name]
    if name == "fanin_4c":
        from repro.experiments.fanin import run_fanin

        return run_fanin(shape, backend=backend)
    if name == "timevarying_walk":
        from repro.experiments.timevarying import run_timevarying

        return run_timevarying(plan=shape, backend=backend)
    if name == "bottleneck_4f":
        from repro.experiments.bottleneck import run_shared_bottleneck

        # The bottleneck scenario carries no batch collector, so there
        # is no backend to select; the digest is backend-free.
        return run_shared_bottleneck(shape)
    raise KeyError(name)


def run_experiment_sharded(name: str, shards: int, backend=None):
    """The sharded twin of ``fanin_4c`` (the decomposed model)."""
    from repro.experiments.fanin import run_fanin_sharded

    if name != "fanin_4c":
        raise KeyError(f"no sharded variant for {name!r}")
    return run_fanin_sharded(
        experiment_shapes()[name], shards=shards, backend=backend
    )


def run_experiment_windowed(name: str, shards: int, workers: int = 1):
    """Windowed-engine twins (the conservative cross-shard path).

    ``bottleneck_4f`` runs natively on the engine; ``fanin_4c`` runs the
    decomposed fan-in *through* the engine (single infinite-lookahead
    window), which must reproduce :data:`GOLDEN_FANIN_SHARDED` exactly —
    the sync machinery may not perturb a byte.
    """
    if name == "bottleneck_4f":
        from repro.experiments.bottleneck import run_shared_bottleneck

        return run_shared_bottleneck(
            experiment_shapes()[name], shards=shards, workers=workers
        )
    if name == "fanin_4c":
        from repro.experiments.fanin import run_fanin_synced

        return run_fanin_synced(
            experiment_shapes()[name], shards=shards, workers=workers
        )
    raise KeyError(f"no windowed variant for {name!r}")


def run_instrumented(config: BenchConfig):
    """One run with tracer + legacy taps on; returns (result, records).

    Exercises the "instrumentation on" flavor of every guarded hot-path
    emit site: the unified tracer, the per-host legacy taps, and deep
    per-socket protocol hooks.
    """
    from repro.obs import Tracer, attach_deep_tracing

    tracer = Tracer(label="equivalence")

    def tweak(bed):
        bed.client_host.trace.enabled = True
        bed.server_host.trace.enabled = True
        attach_deep_tracing(bed, tracer)

    result = run_benchmark(config, tweak=tweak, tracer=tracer)
    return result, list(tracer.records)


def current_digests() -> dict[str, dict[str, str]]:
    """Digests of the current tree, shaped like the committed goldens."""
    out: dict[str, dict[str, str]] = {}
    for name, config in equivalence_configs().items():
        plain = run_plain(config)
        instrumented, records = run_instrumented(config)
        out[name] = {
            "result": digest(plain),
            "result_instrumented": digest(instrumented),
            "trace": digest(records),
        }
    return out


def current_experiment_digests() -> dict[str, str]:
    """Experiment-shape digests of the current tree (legacy backend)."""
    return {name: digest(run_experiment(name)) for name in experiment_shapes()}


if __name__ == "__main__":
    print(json.dumps(current_digests(), indent=2))
    print(json.dumps(current_experiment_digests(), indent=2))
