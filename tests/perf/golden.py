"""Golden-digest equivalence harness for the hot-path optimization pass.

The optimization work in ``sim/``, ``tcp/``, ``net/`` and ``core/`` is
allowed to change *how fast* the pipeline runs, never *what* it
computes.  This module pins that down: a handful of representative runs
(a Figure 2 VM cell, a Figure 4a sweep point, a faults-on chaos run) are
reduced to content digests — a canonical-JSON SHA-256 of the full
:class:`~repro.loadgen.lancet.RunResult` tree and of the emitted
``repro-trace-v1`` stream — and the digests captured *before* the
optimization pass are committed in ``test_equivalence.py``.  Any
optimization that perturbs a single float, counter, or trace record
changes a digest and fails the suite.

Run ``PYTHONPATH=src python tests/perf/golden.py`` to print the current
tree's digests (e.g. after an intentional semantic change, to refresh
the goldens — say so in the commit message).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import replace

from repro.experiments.fig2 import fig2_config
from repro.experiments.fig4a import default_config as fig4a_config
from repro.faults import named_plan
from repro.loadgen.lancet import BenchConfig, run_benchmark
from repro.units import msecs


def equivalence_configs() -> dict[str, BenchConfig]:
    """The pinned run set: one config per pipeline regime.

    Windows are deliberately short — the suite runs under tier-1 — but
    long enough that every hot path fires (GRO, delack, exchange ticks,
    counter sampling, and for the faults run: loss, jitter, recovery).
    """
    return {
        "fig2_vm_nagle": replace(
            fig2_config(vm=True, nagle=True, seed=1, measure_ns=msecs(20)),
            warmup_ns=msecs(10),
        ),
        "fig4a_35k": replace(
            fig4a_config(measure_ns=msecs(20)),
            rate_per_sec=35_000.0,
            warmup_ns=msecs(10),
        ),
        "faults_mixed": BenchConfig(
            rate_per_sec=15_000.0,
            fault_plan=named_plan("mixed"),
            min_rto_ns=msecs(5),
            warmup_ns=msecs(10),
            measure_ns=msecs(30),
            seed=3,
        ),
    }


def canonical_json(obj) -> str:
    """Canonical JSON for digesting: sorted keys, no whitespace.

    Dataclass trees (RunResult and everything it embeds) are flattened
    via :func:`dataclasses.asdict`; NaN serializes as the ``NaN`` token,
    which is fine for digesting (repr is deterministic).
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        obj = dataclasses.asdict(obj)
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), default=repr)


def digest(obj) -> str:
    """SHA-256 hex digest of :func:`canonical_json`."""
    return hashlib.sha256(canonical_json(obj).encode()).hexdigest()


def run_plain(config: BenchConfig):
    """One run with every instrumentation layer off (the default)."""
    return run_benchmark(config)


def run_instrumented(config: BenchConfig):
    """One run with tracer + legacy taps on; returns (result, records).

    Exercises the "instrumentation on" flavor of every guarded hot-path
    emit site: the unified tracer, the per-host legacy taps, and deep
    per-socket protocol hooks.
    """
    from repro.obs import Tracer, attach_deep_tracing

    tracer = Tracer(label="equivalence")

    def tweak(bed):
        bed.client_host.trace.enabled = True
        bed.server_host.trace.enabled = True
        attach_deep_tracing(bed, tracer)

    result = run_benchmark(config, tweak=tweak, tracer=tracer)
    return result, list(tracer.records)


def current_digests() -> dict[str, dict[str, str]]:
    """Digests of the current tree, shaped like the committed goldens."""
    out: dict[str, dict[str, str]] = {}
    for name, config in equivalence_configs().items():
        plain = run_plain(config)
        instrumented, records = run_instrumented(config)
        out[name] = {
            "result": digest(plain),
            "result_instrumented": digest(instrumented),
            "trace": digest(records),
        }
    return out


if __name__ == "__main__":
    print(json.dumps(current_digests(), indent=2))
