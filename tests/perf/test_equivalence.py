"""Golden-digest equivalence: the optimization pass changes nothing.

The digests below were captured on the tree *before* the PR-5 hot-path
optimization pass (``python tests/perf/golden.py`` on the pre-PR
checkout).  Every optimization since — ``__slots__``, trace-emit
guards, the TRACK fast path, closure elimination, the result cache —
must keep every one of them identical: same RunResult tree byte for
byte, same trace stream, instrumentation off and on.

If a digest legitimately needs to change (an intentional semantic
change to the pipeline, not an optimization), refresh with
``PYTHONPATH=src python tests/perf/golden.py`` and say so in the
commit message.
"""

from __future__ import annotations

import pytest

from repro.config import numpy_available
from tests.perf.golden import (
    digest,
    equivalence_configs,
    experiment_shapes,
    run_experiment,
    run_experiment_sharded,
    run_experiment_windowed,
    run_instrumented,
    run_plain,
)

#: Batch-pipeline backends under equivalence test.  ``auto`` is just an
#: alias and ``numpy`` only runs where numpy imports (the CI matrix has
#: a leg with numpy and a leg without, so both fallbacks are proven).
BACKENDS = ["legacy", "python"] + (["numpy"] if numpy_available() else [])

# Captured pre-optimization (PR 5 seed tree, 2026-08-05).
GOLDEN = {
    "fig2_vm_nagle": {
        "result": "7c426136c4fc10fd191e15a252290bc9383169a71cbc4ca47c604ee68b483b8f",
        "result_instrumented": "7c426136c4fc10fd191e15a252290bc9383169a71cbc4ca47c604ee68b483b8f",
        "trace": "c171cfb9bde2a5d6908657420eee0b95388871e19a24a18f8cbf7d58c957cdce",
    },
    "fig4a_35k": {
        "result": "51afa5fc968bf064349bf5eeba8a4b7fe4a81439bec5cfae7af350dfba7a307e",
        "result_instrumented": "51afa5fc968bf064349bf5eeba8a4b7fe4a81439bec5cfae7af350dfba7a307e",
        "trace": "e5ec276e29265fb02fdce5983152928d087ed6beae3de0df31d2043346e08929",
    },
    "faults_mixed": {
        "result": "2f46cde8e3d2e85d376f6cf89ee12c2a837f3008e59cab6fe01ba3245f517495",
        "result_instrumented": "2f46cde8e3d2e85d376f6cf89ee12c2a837f3008e59cab6fe01ba3245f517495",
        "trace": "e432ec3196c642d09c44accdf5ec0002a986e16725e65999b48391dcf6cbad33",
    },
}


#: Experiment-shape digests (see golden.experiment_shapes), captured on
#: the legacy backend.  Every backend — and for the fan-in, every shard
#: count — must reproduce them byte for byte.
GOLDEN_EXPERIMENTS = {
    "fanin_4c": "63111f14594cfef073cec57670a98087dd4f3593c89cce8898c2f064ee6377b4",
    "timevarying_walk": "9e85822afa05a262befcbde6bbca0f81e1f737b54d8307a30aacde38738397ca",
    "bottleneck_4f": "94dc1230dd16d9f2fccd62f8c94d9a260cc5ecf75156c92aa74b08e254abae6e",
}

#: The decomposed (sharded) fan-in model — a different scenario from the
#: monolithic fanin_4c (per-connection server replicas), pinned once and
#: required identical for every shard count and backend.
GOLDEN_FANIN_SHARDED = (
    "4a015db3cf0c7595a7461a32d25c822653cd3791dc6ea3e08101489675f3ad5c"
)


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_plain_run_matches_pre_pr_golden(name):
    config = equivalence_configs()[name]
    assert digest(run_plain(config)) == GOLDEN[name]["result"]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_backends_match_golden_on_bench_shapes(name, backend):
    """Every batch backend reproduces the legacy digests byte for byte."""
    config = equivalence_configs()[name]
    assert digest(run_plain(config, backend=backend)) == GOLDEN[name]["result"]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name", sorted(GOLDEN_EXPERIMENTS))
def test_backends_match_golden_on_experiment_shapes(name, backend):
    """Fan-in and time-varying traffic, equivalence-proven per backend."""
    assert (
        digest(run_experiment(name, backend=backend))
        == GOLDEN_EXPERIMENTS[name]
    )


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_sharded_fanin_is_shard_count_invariant(shards):
    """The decomposed fan-in digest is identical for every partition."""
    result = run_experiment_sharded("fanin_4c", shards)
    assert digest(result) == GOLDEN_FANIN_SHARDED
    assert result.to_json()  # canonical JSON stays serializable


@pytest.mark.parametrize("workers", [1, 2])
@pytest.mark.parametrize("shards", [1, 2, 4])
def test_bottleneck_is_partition_and_pool_invariant(shards, workers):
    """The windowed engine's core contract: the shared-bottleneck run is
    byte-identical for every (shards, workers) combination, including
    the in-process serial run."""
    result = run_experiment_windowed("bottleneck_4f", shards, workers)
    assert digest(result) == GOLDEN_EXPERIMENTS["bottleneck_4f"]
    assert result.to_json()  # canonical JSON stays serializable


@pytest.mark.parametrize("shards", [1, 2])
def test_fanin_through_windowed_engine_matches_sharded_golden(shards):
    """The decomposed fan-in run *through* the sync engine (one
    infinite-lookahead window) reproduces the sharded golden exactly:
    the sync machinery perturbs nothing when components never talk."""
    result = run_experiment_windowed("fanin_4c", shards)
    assert digest(result) == GOLDEN_FANIN_SHARDED


def test_experiment_shapes_cover_issue_scope():
    """fanin + timevarying + bottleneck are digest-covered."""
    assert set(experiment_shapes()) == set(GOLDEN_EXPERIMENTS)


@pytest.mark.parametrize("name", sorted(GOLDEN))
def test_instrumented_run_matches_pre_pr_golden(name):
    """Tracing on must neither perturb the result nor its own stream."""
    config = equivalence_configs()[name]
    result, records = run_instrumented(config)
    assert digest(result) == GOLDEN[name]["result_instrumented"]
    assert digest(records) == GOLDEN[name]["trace"]


def test_instrumentation_is_invisible_to_results():
    """The committed goldens themselves: tracing never changes a result."""
    for name, golden in GOLDEN.items():
        assert golden["result"] == golden["result_instrumented"], name


# ---------------------------------------------------------------------------
# Result cache: hits replay byte-identically, misses/stores are counted.
# ---------------------------------------------------------------------------


def test_cache_hit_replay_is_byte_identical(tmp_path):
    """A cache hit is the *same bytes* as running the config fresh."""
    from repro.cache import ResultCache
    from repro.parallel import run_campaign

    config = equivalence_configs()["fig2_vm_nagle"]

    cache = ResultCache(tmp_path / "cache")
    (first,) = run_campaign([config], checkpoint=cache)
    assert (cache.hits, cache.misses, cache.stores) == (0, 1, 1)
    cache.close()

    # A fresh cache object over the same directory: a different
    # "experiment" replaying the same config from disk.
    replay_cache = ResultCache(tmp_path / "cache")
    (replayed,) = run_campaign([config], checkpoint=replay_cache)
    assert (replay_cache.hits, replay_cache.misses) == (1, 0)
    replay_cache.close()

    fresh_digest = digest(run_plain(config))
    assert digest(first) == fresh_digest
    assert digest(replayed) == fresh_digest
    assert fresh_digest == GOLDEN["fig2_vm_nagle"]["result"]


def test_within_campaign_dedupe_runs_each_key_once(tmp_path):
    """Duplicate configs in one campaign run once and share the result."""
    from repro.cache import ResultCache
    from repro.parallel import ParallelRunner

    config = equivalence_configs()["fig2_vm_nagle"]
    cache = ResultCache(tmp_path / "cache")
    runner = ParallelRunner(workers=1)
    outcomes = runner.run_many_outcomes(
        [config, config, config], checkpoint=cache
    )
    # One miss, one store: the two duplicates reused the primary's run
    # without touching the cache.
    assert (cache.hits, cache.misses, cache.stores) == (0, 1, 1)
    assert runner.last_metrics.counter("supervise.deduped").value == 2
    digests = {digest(outcome.result) for outcome in outcomes}
    assert digests == {GOLDEN["fig2_vm_nagle"]["result"]}
    cache.close()


def test_cross_experiment_reuse(tmp_path):
    """Two campaigns sharing a config share its result through the cache."""
    from repro.cache import ResultCache
    from repro.parallel import run_campaign

    configs = equivalence_configs()
    shared = configs["fig2_vm_nagle"]
    other = configs["fig4a_35k"]

    cache = ResultCache(tmp_path / "cache")
    run_campaign([shared], checkpoint=cache)
    cache.close()

    # "Experiment two" overlaps experiment one in `shared` only.
    cache_two = ResultCache(tmp_path / "cache")
    shared_again, other_result = run_campaign(
        [shared, other], checkpoint=cache_two
    )
    assert (cache_two.hits, cache_two.misses, cache_two.stores) == (1, 1, 1)
    assert digest(shared_again) == GOLDEN["fig2_vm_nagle"]["result"]
    assert digest(other_result) == GOLDEN["fig4a_35k"]["result"]
    cache_two.close()
